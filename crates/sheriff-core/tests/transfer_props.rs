//! Properties of the network-aware transfer scheduler (`sheriff-transfer`)
//! as wired into the fabric runtime:
//!
//! 1. With the transfer model *disabled* (the default), the fabric is
//!    byte-identical to the PR 7 event-core runtime — pinned by digests
//!    of the full event stream + report captured on the pre-transfer
//!    tree.
//! 2. With the transfer model *enabled*, same-seed rounds are
//!    byte-identical across repeats even under lossy channels and
//!    mid-transfer shim crashes.

use dcn_sim::engine::{Cluster, ClusterConfig};
use dcn_sim::{ChannelFaults, RackMetric, SimConfig};
use dcn_topology::fattree::{self, FatTreeConfig};
use proptest::prelude::*;
use sheriff_core::{fabric_round_obs, CrashWindow, FabricConfig, LinkFaultWindow};
use sheriff_obs::RingRecorder;

fn small_cluster(seed: u64) -> Cluster {
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 3.0,
            seed,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    )
}

/// FNV-1a over the serialized event stream and the report's debug
/// rendering: any behavioral drift — one extra event, one changed
/// counter — changes the digest.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn round_digest(cluster_seed: u64, cfg: &FabricConfig) -> u64 {
    let (report, rec, c) = faulted_round(cluster_seed, cfg);
    digest_of(&report, &rec, &c, cfg.transfer.is_some())
}

fn digest_of(
    report: &sheriff_core::DistributedReport,
    rec: &RingRecorder,
    c: &Cluster,
    transfer_enabled: bool,
) -> u64 {
    let mut buf = String::new();
    for ev in rec.events() {
        buf.push_str(&ev.to_json());
        buf.push('\n');
    }
    // the PR 7-era report fields, spelled out so adding *new* fields to
    // DistributedReport (a schema change, not a behavior change) does
    // not move the digest
    for m in &report.plan.moves {
        buf.push_str(&format!(
            "mv {:?} {:?} {:?} {};",
            m.vm, m.from, m.to, m.cost
        ));
    }
    buf.push_str(&format!(
        "plan {} {} {} {:?};",
        report.plan.total_cost,
        report.plan.search_space,
        report.plan.rejected,
        report.plan.unplaced
    ));
    buf.push_str(&format!(
        "r {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {};",
        report.retries,
        report.shims,
        report.drops,
        report.timeouts,
        report.resends,
        report.dedup_hits,
        report.degraded_shims,
        report.crashed_shims,
        report.ticks,
        report.txn_prepared,
        report.txn_committed,
        report.txn_aborted,
        report.recoveries,
        report.takeovers,
        report.fenced,
        report.partition_degraded,
        report.reconciliations,
        report.audit,
    ));
    if transfer_enabled {
        buf.push_str(&format!(
            "t {} {} {} {} {} {:?};",
            report.transfers_started,
            report.transfers_completed,
            report.transfer_reroutes,
            report.transfer_queue_delays,
            report.transfer_peak_sharing,
            report.transfer_durations,
        ));
    }
    // final placement is part of the behavior, not just the report
    for vm in c.placement.vm_ids() {
        buf.push_str(&format!("{vm:?}={:?};", c.placement.host_of(vm)));
    }
    fnv1a(buf.bytes())
}

fn pr7_cases() -> Vec<(u64, FabricConfig)> {
    let reliable = FabricConfig::default();
    let lossy = FabricConfig {
        faults: ChannelFaults {
            drop: 0.10,
            duplicate: 0.10,
            reorder: 0.15,
            delay_min: 1,
            delay_max: 3,
        },
        seed: 99,
        ..FabricConfig::default()
    };
    let mut crashy = lossy.clone();
    crashy.crashed = vec![CrashWindow {
        rack: dcn_topology::RackId::from_index(1),
        crash_at: 5,
        recover_at: Some(14),
    }];
    vec![(26, reliable), (27, lossy), (31, crashy)]
}

/// Digests of the PR 7 fabric captured before `sheriff-transfer`
/// existed. With `FabricConfig::transfer` left at `None` the runtime
/// must keep reproducing these exactly.
const PR7_DIGESTS: [u64; 3] = [
    0x0fdb_3b6b_9bcb_d834,
    0x9a41_36be_313c_f6c7,
    0xec6b_1401_3721_e6b6,
];

#[test]
#[ignore = "capture helper: prints digests for pinning"]
fn print_pr7_digests() {
    for (i, (seed, cfg)) in pr7_cases().into_iter().enumerate() {
        println!("case {i}: {:#018x}", round_digest(seed, &cfg));
        let _ = seed;
    }
}

#[test]
fn disabled_transfer_model_reproduces_pr7_digests() {
    for (i, (seed, cfg)) in pr7_cases().into_iter().enumerate() {
        assert_eq!(
            round_digest(seed, &cfg),
            PR7_DIGESTS[i],
            "case {i} drifted from the PR 7 fabric"
        );
    }
}

/// Digests of the transfer-enabled, fault-free fabric captured on the
/// PR 8 tree (the `pr7_cases` channel configs with crash windows
/// cleared and `TransferConfig::default()`). The recovery machinery
/// must stay strictly inert — byte-identical — when no link fault or
/// crash is scheduled.
const PR8_ENABLED_DIGESTS: [u64; 3] = [
    0x9958_19c9_0ac0_66d2,
    0x059e_70ca_dd4c_a4a0,
    0x0a37_4f33_c396_c13d,
];

#[test]
#[ignore = "capture helper: prints digests for pinning"]
fn print_pr8_enabled_digests() {
    for (i, (seed, cfg)) in pr7_cases().into_iter().enumerate() {
        let mut cfg = cfg;
        cfg.crashed.clear();
        let cfg = cfg.with_transfer(sheriff_transfer::TransferConfig::default());
        println!("enabled case {i}: {:#018x}", round_digest(seed, &cfg));
    }
}

#[test]
fn enabled_without_faults_reproduces_pr8_digests() {
    for (i, (seed, cfg)) in pr7_cases().into_iter().enumerate() {
        let mut cfg = cfg;
        cfg.crashed.clear();
        let cfg = cfg.with_transfer(sheriff_transfer::TransferConfig::default());
        assert_eq!(
            round_digest(seed, &cfg),
            PR8_ENABLED_DIGESTS[i],
            "enabled case {i} drifted from the PR 8 fabric"
        );
    }
}

/// Run one transfer-enabled round and return `(report, recorder, cluster)`.
fn faulted_round(
    cluster_seed: u64,
    cfg: &FabricConfig,
) -> (sheriff_core::DistributedReport, RingRecorder, Cluster) {
    let mut c = small_cluster(cluster_seed);
    let metric = RackMetric::build(&c.dcn, &c.sim);
    let alerts = c.fraction_alerts(0.15, 0);
    let vals: Vec<f64> = c
        .placement
        .vm_ids()
        .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
        .collect();
    let mut rec = RingRecorder::new(1 << 16);
    let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, cfg, &mut rec);
    (report, rec, c)
}

#[test]
fn mid_round_link_failure_stalls_then_resumes_from_checkpoint() {
    // slow transfers so plenty are mid-stream when, at tick 10, every
    // edge dies — no surviving candidate exists, so streaming pre-copies
    // stall at their checkpoints — and at tick 16 the fabric heals and
    // they resume
    let edges = small_cluster(26).dcn.graph.edge_count();
    let cfg = FabricConfig {
        link_faults: (0..edges)
            .map(|e| LinkFaultWindow::during(e, 10, 16))
            .collect(),
        ..FabricConfig::default()
    }
    .with_transfer(sheriff_transfer::TransferConfig {
        link_bandwidth: 1.0,
        ..sheriff_transfer::TransferConfig::default()
    });
    let (report, rec, _) = faulted_round(26, &cfg);
    assert!(report.transfer_stalls >= 1, "no transfer ever stalled");
    assert!(
        rec.count_kind("transfer_resumed") >= 1,
        "no stalled transfer resumed after the restore"
    );
    assert!(
        report.resumed_bytes_saved > 0.0,
        "checkpointed resume must save the bytes copied before the stall"
    );
    assert_eq!(
        report.transfers_completed, report.transfers_started,
        "every stalled pre-copy must still finish once the links return"
    );
    assert_eq!(report.transfer_failures, 0);
    assert!(report.audit.is_clean(), "{}", report.audit);
}

#[test]
fn permanent_link_failure_exhausts_retries_and_aborts_cleanly() {
    // every edge dies at tick 10 and never comes back: stalled pre-copies
    // burn their retry budget and escalate to a clean journal abort; the
    // sources replan and the round still terminates with a clean audit
    let edges = small_cluster(26).dcn.graph.edge_count();
    let cfg = FabricConfig {
        link_faults: (0..edges)
            .map(|e| LinkFaultWindow {
                link: e,
                fail_at: 10,
                restore_at: None,
            })
            .collect(),
        ..FabricConfig::default()
    }
    .with_transfer(sheriff_transfer::TransferConfig {
        link_bandwidth: 1.0,
        stall_budget: 4,
        max_attempts: 2,
        ..sheriff_transfer::TransferConfig::default()
    });
    let (report, rec, _) = faulted_round(26, &cfg);
    assert!(report.transfer_stalls >= 1, "no transfer ever stalled");
    assert!(
        report.transfer_failures >= 1,
        "permanent outage must exhaust some retry budget"
    );
    assert_eq!(
        rec.count_kind("transfer_failed"),
        report.transfer_failures,
        "every failure emits its event"
    );
    assert!(report.transfer_retries >= 1);
    assert!(
        report.txn_aborted >= report.transfer_failures,
        "each exhausted transfer escalates to a journal abort"
    );
    assert_eq!(
        report.txn_prepared,
        report.txn_committed + report.txn_aborted,
        "2PC conservation: every prepare settles exactly once"
    );
    assert!(report.audit.is_clean(), "{}", report.audit);
}

#[test]
fn rack_crash_without_recovery_fails_transfers_and_accounts_aborts() {
    // regression for the silent rack-crash cancellation: a pre-copy
    // streaming into a rack that dies for good must surface as a
    // `transfer_failed` event with its journal prepare aborted, not
    // vanish behind a bare cancellation counter
    let mut found = false;
    for rack in 0..8u32 {
        let cfg = FabricConfig {
            crashed: vec![CrashWindow {
                rack: dcn_topology::RackId::from_index(rack as usize),
                crash_at: 8,
                recover_at: None,
            }],
            ..FabricConfig::default()
        }
        .with_transfer(sheriff_transfer::TransferConfig {
            link_bandwidth: 1.0,
            ..sheriff_transfer::TransferConfig::default()
        });
        let (report, rec, _) = faulted_round(26, &cfg);
        let failed = rec.count_kind("transfer_failed");
        if failed == 0 {
            continue;
        }
        found = true;
        assert!(
            report.txn_aborted >= failed,
            "each failed transfer must abort its journalled prepare: \
             {failed} failures, {} aborts",
            report.txn_aborted
        );
        assert_eq!(
            report.txn_prepared,
            report.txn_committed + report.txn_aborted,
            "2PC conservation under rack crash"
        );
        assert!(report.audit.is_clean(), "{}", report.audit);
        break;
    }
    assert!(
        found,
        "no crashed rack ever hosted an in-flight pre-copy; the \
         regression path was never exercised"
    );
}

#[test]
fn enabled_transfers_stream_commit_and_audit_clean() {
    let cfg = FabricConfig::default().with_transfer(sheriff_transfer::TransferConfig::default());
    let mut c = small_cluster(26);
    let initial = c.placement.clone();
    let metric = RackMetric::build(&c.dcn, &c.sim);
    let alerts = c.fraction_alerts(0.15, 0);
    let vals: Vec<f64> = c
        .placement
        .vm_ids()
        .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
        .collect();
    let mut rec = RingRecorder::new(1 << 16);
    let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut rec);

    assert!(report.transfers_started > 0, "no transfer ever started");
    assert_eq!(
        report.transfers_completed, report.transfers_started,
        "a reliable round must finish every pre-copy it starts"
    );
    assert_eq!(
        report.transfer_durations.len(),
        report.transfers_completed,
        "every completion records its duration"
    );
    assert!(report.transfer_durations.iter().all(|&d| d >= 1));
    assert!(!report.plan.moves.is_empty());
    assert_eq!(report.txn_committed, report.plan.moves.len());
    assert_eq!(rec.count_kind("transfer_started"), report.transfers_started);
    assert_eq!(
        rec.count_kind("transfer_completed"),
        report.transfers_completed
    );
    assert!(report.audit.is_clean(), "{}", report.audit);
    // exactly-once: replaying the recorded moves reproduces the final
    // placement even with the deferred, transfer-gated commit path
    let mut loc: std::collections::HashMap<_, _> = c
        .placement
        .vm_ids()
        .map(|vm| (vm, initial.host_of(vm)))
        .collect();
    for m in &report.plan.moves {
        assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
        loc.insert(m.vm, m.to);
    }
    for vm in c.placement.vm_ids() {
        assert_eq!(loc[&vm], c.placement.host_of(vm));
    }
}

#[test]
fn enabled_round_takes_longer_than_instantaneous_settlement() {
    let run = |transfer: Option<sheriff_transfer::TransferConfig>| {
        let cfg = FabricConfig {
            transfer,
            ..FabricConfig::default()
        };
        let mut c = small_cluster(26);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.15, 0);
        let vals: Vec<f64> = c
            .placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect();
        fabric_round_obs(
            &mut c,
            &metric,
            &alerts,
            &vals,
            &cfg,
            &mut sheriff_obs::NullSink,
        )
    };
    let instant = run(None);
    let modeled = run(Some(sheriff_transfer::TransferConfig {
        link_bandwidth: 1.0,
        ..sheriff_transfer::TransferConfig::default()
    }));
    assert!(
        modeled.ticks > instant.ticks,
        "streaming pre-copies must stretch the round: {} vs {}",
        modeled.ticks,
        instant.ticks
    );
    assert_eq!(
        modeled.plan.moves.len(),
        instant.plan.moves.len(),
        "the transfer model changes timing, not outcomes, on a reliable channel"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same-seed transfer schedules are byte-identical across 5 repeats
    /// under lossy channels and mid-transfer shim crashes: the full
    /// event stream (transfer events included), report, and final
    /// placement digest to the same value every time.
    #[test]
    fn transfer_schedule_is_byte_identical_across_repeats(
        cluster_seed in 0u64..4,
        net_seed in 0u64..500,
        drop in 0.0f64..0.25,
        duplicate in 0.0f64..0.2,
        crash_at in 3u64..20,
        recover_delay in 0u64..16,
        bandwidth in 1u64..6,
        max_concurrent in 0usize..4,
    ) {
        let cfg = FabricConfig {
            faults: ChannelFaults {
                drop,
                duplicate,
                reorder: 0.1,
                delay_min: 1,
                delay_max: 2,
            },
            seed: net_seed,
            crashed: vec![CrashWindow {
                rack: dcn_topology::RackId::from_index((cluster_seed as usize) % 8),
                crash_at,
                recover_at: (recover_delay > 0).then(|| crash_at + recover_delay),
            }],
            ..FabricConfig::default()
        }
        .with_transfer(sheriff_transfer::TransferConfig {
            link_bandwidth: bandwidth as f64,
            max_concurrent,
            ..sheriff_transfer::TransferConfig::default()
        });
        let first = round_digest(cluster_seed, &cfg);
        for rep in 1..5 {
            prop_assert_eq!(first, round_digest(cluster_seed, &cfg), "repeat {} diverged", rep);
        }
    }

    /// Under any fault mix, the transfer-enabled fabric keeps the
    /// exactly-once and audit invariants.
    #[test]
    fn enabled_transfers_stay_safe_under_faults(
        cluster_seed in 0u64..4,
        net_seed in 0u64..500,
        drop in 0.0f64..0.3,
        crash_at in 0u64..24,
    ) {
        let cfg = FabricConfig {
            faults: ChannelFaults {
                drop,
                duplicate: 0.1,
                reorder: 0.1,
                delay_min: 1,
                delay_max: 2,
            },
            seed: net_seed,
            crashed: vec![CrashWindow {
                rack: dcn_topology::RackId::from_index(1),
                crash_at,
                recover_at: Some(crash_at + 9),
            }],
            ..FabricConfig::default()
        }
        .with_transfer(sheriff_transfer::TransferConfig::default());
        let mut c = small_cluster(cluster_seed);
        let initial = c.placement.clone();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.15, 0);
        prop_assume!(!alerts.is_empty());
        let vals: Vec<f64> = c
            .placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect();
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut sheriff_obs::NullSink);
        prop_assert!(report.ticks <= cfg.max_ticks);
        prop_assert!(report.audit.is_clean(), "{}", report.audit);
        let mut loc: std::collections::HashMap<_, _> = c
            .placement
            .vm_ids()
            .map(|vm| (vm, initial.host_of(vm)))
            .collect();
        for m in &report.plan.moves {
            prop_assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
            loc.insert(m.vm, m.to);
        }
        for vm in c.placement.vm_ids() {
            prop_assert_eq!(loc[&vm], c.placement.host_of(vm));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The recovery state machine under arbitrary fault schedules:
    /// random mid-round link fail/restore windows combined with random
    /// shim crash windows must leave (1) a clean audit — which includes
    /// the fabric's in-round probes that no transfer streams across a
    /// failed link and every active transfer holds a Prepared journal
    /// entry, (2) 2PC conservation (every prepare commits or aborts,
    /// never both, never neither), and (3) byte-identical behavior
    /// across 5 repeats of the same schedule.
    #[test]
    fn random_fault_schedules_recover_cleanly_and_deterministically(
        cluster_seed in 0u64..4,
        // restore/recover delays of 0 mean "never" (an Option encoded
        // as a plain integer — the vendored proptest has no option::of)
        link_schedule in proptest::collection::vec(
            (0usize..32, 0u64..40, 0u64..24),
            0..6,
        ),
        crash_schedule in proptest::collection::vec(
            (0usize..8, 2u64..24, 0u64..16),
            0..2,
        ),
        stall_budget in 2u64..6,
        max_attempts in 1u32..4,
    ) {
        let cfg = FabricConfig {
            link_faults: link_schedule
                .iter()
                .map(|&(link, fail_at, restore_delay)| LinkFaultWindow {
                    link,
                    fail_at,
                    restore_at: (restore_delay > 0).then(|| fail_at + restore_delay),
                })
                .collect(),
            crashed: crash_schedule
                .iter()
                .map(|&(rack, crash_at, recover_delay)| CrashWindow {
                    rack: dcn_topology::RackId::from_index(rack),
                    crash_at,
                    recover_at: (recover_delay > 0).then(|| crash_at + recover_delay),
                })
                .collect(),
            ..FabricConfig::default()
        }
        .with_transfer(sheriff_transfer::TransferConfig {
            link_bandwidth: 1.0,
            stall_budget,
            max_attempts,
            ..sheriff_transfer::TransferConfig::default()
        });
        let (report, rec, c) = faulted_round(cluster_seed, &cfg);
        let first = digest_of(&report, &rec, &c, true);
        prop_assert!(report.audit.is_clean(), "{}", report.audit);
        prop_assert_eq!(
            report.txn_prepared,
            report.txn_committed + report.txn_aborted,
            "2PC conservation: every prepare settles exactly once"
        );
        prop_assert!(
            report.txn_aborted >= report.transfer_failures,
            "each exhausted transfer escalates to a journal abort: \
             links={:?} crashes={:?} failures={} aborted={} prepared={} committed={}",
            link_schedule,
            crash_schedule,
            report.transfer_failures,
            report.txn_aborted,
            report.txn_prepared,
            report.txn_committed
        );
        for rep in 1..5 {
            let (r, re, cl) = faulted_round(cluster_seed, &cfg);
            prop_assert_eq!(
                first,
                digest_of(&r, &re, &cl, true),
                "repeat {} diverged",
                rep
            );
        }
    }
}

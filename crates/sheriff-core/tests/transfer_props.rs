//! Properties of the network-aware transfer scheduler (`sheriff-transfer`)
//! as wired into the fabric runtime:
//!
//! 1. With the transfer model *disabled* (the default), the fabric is
//!    byte-identical to the PR 7 event-core runtime — pinned by digests
//!    of the full event stream + report captured on the pre-transfer
//!    tree.
//! 2. With the transfer model *enabled*, same-seed rounds are
//!    byte-identical across repeats even under lossy channels and
//!    mid-transfer shim crashes.

use dcn_sim::engine::{Cluster, ClusterConfig};
use dcn_sim::{ChannelFaults, RackMetric, SimConfig};
use dcn_topology::fattree::{self, FatTreeConfig};
use proptest::prelude::*;
use sheriff_core::{fabric_round_obs, CrashWindow, FabricConfig};
use sheriff_obs::RingRecorder;

fn small_cluster(seed: u64) -> Cluster {
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 3.0,
            seed,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    )
}

/// FNV-1a over the serialized event stream and the report's debug
/// rendering: any behavioral drift — one extra event, one changed
/// counter — changes the digest.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn round_digest(cluster_seed: u64, cfg: &FabricConfig) -> u64 {
    let mut c = small_cluster(cluster_seed);
    let metric = RackMetric::build(&c.dcn, &c.sim);
    let alerts = c.fraction_alerts(0.15, 0);
    let vals: Vec<f64> = c
        .placement
        .vm_ids()
        .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
        .collect();
    let mut rec = RingRecorder::new(1 << 16);
    let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, cfg, &mut rec);
    let mut buf = String::new();
    for ev in rec.events() {
        buf.push_str(&ev.to_json());
        buf.push('\n');
    }
    // the PR 7-era report fields, spelled out so adding *new* fields to
    // DistributedReport (a schema change, not a behavior change) does
    // not move the digest
    for m in &report.plan.moves {
        buf.push_str(&format!(
            "mv {:?} {:?} {:?} {};",
            m.vm, m.from, m.to, m.cost
        ));
    }
    buf.push_str(&format!(
        "plan {} {} {} {:?};",
        report.plan.total_cost,
        report.plan.search_space,
        report.plan.rejected,
        report.plan.unplaced
    ));
    buf.push_str(&format!(
        "r {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {};",
        report.retries,
        report.shims,
        report.drops,
        report.timeouts,
        report.resends,
        report.dedup_hits,
        report.degraded_shims,
        report.crashed_shims,
        report.ticks,
        report.txn_prepared,
        report.txn_committed,
        report.txn_aborted,
        report.recoveries,
        report.takeovers,
        report.fenced,
        report.partition_degraded,
        report.reconciliations,
        report.audit,
    ));
    if cfg.transfer.is_some() {
        buf.push_str(&format!(
            "t {} {} {} {} {} {:?};",
            report.transfers_started,
            report.transfers_completed,
            report.transfer_reroutes,
            report.transfer_queue_delays,
            report.transfer_peak_sharing,
            report.transfer_durations,
        ));
    }
    // final placement is part of the behavior, not just the report
    for vm in c.placement.vm_ids() {
        buf.push_str(&format!("{vm:?}={:?};", c.placement.host_of(vm)));
    }
    fnv1a(buf.bytes())
}

fn pr7_cases() -> Vec<(u64, FabricConfig)> {
    let reliable = FabricConfig::default();
    let lossy = FabricConfig {
        faults: ChannelFaults {
            drop: 0.10,
            duplicate: 0.10,
            reorder: 0.15,
            delay_min: 1,
            delay_max: 3,
        },
        seed: 99,
        ..FabricConfig::default()
    };
    let mut crashy = lossy.clone();
    crashy.crashed = vec![CrashWindow {
        rack: dcn_topology::RackId::from_index(1),
        crash_at: 5,
        recover_at: Some(14),
    }];
    vec![(26, reliable), (27, lossy), (31, crashy)]
}

/// Digests of the PR 7 fabric captured before `sheriff-transfer`
/// existed. With `FabricConfig::transfer` left at `None` the runtime
/// must keep reproducing these exactly.
const PR7_DIGESTS: [u64; 3] = [
    0x0fdb_3b6b_9bcb_d834,
    0x9a41_36be_313c_f6c7,
    0xec6b_1401_3721_e6b6,
];

#[test]
#[ignore = "capture helper: prints digests for pinning"]
fn print_pr7_digests() {
    for (i, (seed, cfg)) in pr7_cases().into_iter().enumerate() {
        println!("case {i}: {:#018x}", round_digest(seed, &cfg));
        let _ = seed;
    }
}

#[test]
fn disabled_transfer_model_reproduces_pr7_digests() {
    for (i, (seed, cfg)) in pr7_cases().into_iter().enumerate() {
        assert_eq!(
            round_digest(seed, &cfg),
            PR7_DIGESTS[i],
            "case {i} drifted from the PR 7 fabric"
        );
    }
}

#[test]
fn enabled_transfers_stream_commit_and_audit_clean() {
    let cfg = FabricConfig::default().with_transfer(sheriff_transfer::TransferConfig::default());
    let mut c = small_cluster(26);
    let initial = c.placement.clone();
    let metric = RackMetric::build(&c.dcn, &c.sim);
    let alerts = c.fraction_alerts(0.15, 0);
    let vals: Vec<f64> = c
        .placement
        .vm_ids()
        .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
        .collect();
    let mut rec = RingRecorder::new(1 << 16);
    let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut rec);

    assert!(report.transfers_started > 0, "no transfer ever started");
    assert_eq!(
        report.transfers_completed, report.transfers_started,
        "a reliable round must finish every pre-copy it starts"
    );
    assert_eq!(
        report.transfer_durations.len(),
        report.transfers_completed,
        "every completion records its duration"
    );
    assert!(report.transfer_durations.iter().all(|&d| d >= 1));
    assert!(!report.plan.moves.is_empty());
    assert_eq!(report.txn_committed, report.plan.moves.len());
    assert_eq!(rec.count_kind("transfer_started"), report.transfers_started);
    assert_eq!(
        rec.count_kind("transfer_completed"),
        report.transfers_completed
    );
    assert!(report.audit.is_clean(), "{}", report.audit);
    // exactly-once: replaying the recorded moves reproduces the final
    // placement even with the deferred, transfer-gated commit path
    let mut loc: std::collections::HashMap<_, _> = c
        .placement
        .vm_ids()
        .map(|vm| (vm, initial.host_of(vm)))
        .collect();
    for m in &report.plan.moves {
        assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
        loc.insert(m.vm, m.to);
    }
    for vm in c.placement.vm_ids() {
        assert_eq!(loc[&vm], c.placement.host_of(vm));
    }
}

#[test]
fn enabled_round_takes_longer_than_instantaneous_settlement() {
    let run = |transfer: Option<sheriff_transfer::TransferConfig>| {
        let cfg = FabricConfig {
            transfer,
            ..FabricConfig::default()
        };
        let mut c = small_cluster(26);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.15, 0);
        let vals: Vec<f64> = c
            .placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect();
        fabric_round_obs(
            &mut c,
            &metric,
            &alerts,
            &vals,
            &cfg,
            &mut sheriff_obs::NullSink,
        )
    };
    let instant = run(None);
    let modeled = run(Some(sheriff_transfer::TransferConfig {
        link_bandwidth: 1.0,
        ..sheriff_transfer::TransferConfig::default()
    }));
    assert!(
        modeled.ticks > instant.ticks,
        "streaming pre-copies must stretch the round: {} vs {}",
        modeled.ticks,
        instant.ticks
    );
    assert_eq!(
        modeled.plan.moves.len(),
        instant.plan.moves.len(),
        "the transfer model changes timing, not outcomes, on a reliable channel"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same-seed transfer schedules are byte-identical across 5 repeats
    /// under lossy channels and mid-transfer shim crashes: the full
    /// event stream (transfer events included), report, and final
    /// placement digest to the same value every time.
    #[test]
    fn transfer_schedule_is_byte_identical_across_repeats(
        cluster_seed in 0u64..4,
        net_seed in 0u64..500,
        drop in 0.0f64..0.25,
        duplicate in 0.0f64..0.2,
        crash_at in 3u64..20,
        recover_delay in 0u64..16,
        bandwidth in 1u64..6,
        max_concurrent in 0usize..4,
    ) {
        let cfg = FabricConfig {
            faults: ChannelFaults {
                drop,
                duplicate,
                reorder: 0.1,
                delay_min: 1,
                delay_max: 2,
            },
            seed: net_seed,
            crashed: vec![CrashWindow {
                rack: dcn_topology::RackId::from_index((cluster_seed as usize) % 8),
                crash_at,
                recover_at: (recover_delay > 0).then(|| crash_at + recover_delay),
            }],
            ..FabricConfig::default()
        }
        .with_transfer(sheriff_transfer::TransferConfig {
            link_bandwidth: bandwidth as f64,
            max_concurrent,
            ..sheriff_transfer::TransferConfig::default()
        });
        let first = round_digest(cluster_seed, &cfg);
        for rep in 1..5 {
            prop_assert_eq!(first, round_digest(cluster_seed, &cfg), "repeat {} diverged", rep);
        }
    }

    /// Under any fault mix, the transfer-enabled fabric keeps the
    /// exactly-once and audit invariants.
    #[test]
    fn enabled_transfers_stay_safe_under_faults(
        cluster_seed in 0u64..4,
        net_seed in 0u64..500,
        drop in 0.0f64..0.3,
        crash_at in 0u64..24,
    ) {
        let cfg = FabricConfig {
            faults: ChannelFaults {
                drop,
                duplicate: 0.1,
                reorder: 0.1,
                delay_min: 1,
                delay_max: 2,
            },
            seed: net_seed,
            crashed: vec![CrashWindow {
                rack: dcn_topology::RackId::from_index(1),
                crash_at,
                recover_at: Some(crash_at + 9),
            }],
            ..FabricConfig::default()
        }
        .with_transfer(sheriff_transfer::TransferConfig::default());
        let mut c = small_cluster(cluster_seed);
        let initial = c.placement.clone();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.15, 0);
        prop_assume!(!alerts.is_empty());
        let vals: Vec<f64> = c
            .placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect();
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut sheriff_obs::NullSink);
        prop_assert!(report.ticks <= cfg.max_ticks);
        prop_assert!(report.audit.is_clean(), "{}", report.audit);
        let mut loc: std::collections::HashMap<_, _> = c
            .placement
            .vm_ids()
            .map(|vm| (vm, initial.host_of(vm)))
            .collect();
        for m in &report.plan.moves {
            prop_assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
            loc.insert(m.vm, m.to);
        }
        for vm in c.placement.vm_ids() {
            prop_assert_eq!(loc[&vm], c.placement.host_of(vm));
        }
    }
}

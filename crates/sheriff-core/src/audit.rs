//! Always-on invariant auditor: a cheap post-round consistency check.
//!
//! Every `Runtime::step` can afford one linear pass over the placement
//! after mutating it. The auditor verifies the invariants the paper's
//! constraints (Eqn. 7/8) and our crash-consistency machinery promise —
//! no VM lost or duplicated, no host over capacity, no dependent pair
//! co-located, no migration landing on an offline host, and journal /
//! placement agreement — and reports violations as typed values instead
//! of panicking, so scenario sweeps can surface them as columns.

use crate::journal::{IntentJournal, TxnState};
use crate::protocol::ReqId;
use dcn_topology::{DependencyGraph, HostId, Placement, RackId, VmId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// One invariant breach found by the auditor.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditViolation {
    /// A VM id exists but no host's resident list contains it.
    VmLost {
        /// The vanished VM.
        vm: VmId,
    },
    /// A VM appears in more than one host's resident list.
    VmDuplicated {
        /// The doubled VM.
        vm: VmId,
    },
    /// A host's used capacity exceeds its physical capacity (Eqn. 8).
    CapacityExceeded {
        /// The overfull host.
        host: HostId,
        /// Capacity in use.
        used: f64,
        /// Physical limit.
        limit: f64,
    },
    /// Two dependent VMs share a host (χ constraint, Eqn. 7).
    DependentsColocated {
        /// The shared host.
        host: HostId,
        /// First VM of the dependent pair.
        a: VmId,
        /// Second VM of the dependent pair.
        b: VmId,
    },
    /// A committed migration landed a VM on an offline host.
    OfflineHostGainedVm {
        /// The offline destination.
        host: HostId,
        /// The VM that moved there.
        vm: VmId,
    },
    /// A transaction is still `Prepared` after the round settled.
    UnresolvedTxn {
        /// The zombie transaction.
        req: ReqId,
        /// The VM it holds hostage.
        vm: VmId,
    },
    /// Two shims both claim management of the same VM — a takeover or
    /// partition/heal cycle handed a rack to a new manager without
    /// fencing the old one.
    VmDoubleManaged {
        /// The doubly-managed VM.
        vm: VmId,
        /// First rack claiming it.
        a: RackId,
        /// Second rack claiming it.
        b: RackId,
    },
    /// An in-flight transfer is still streaming across a failed link —
    /// the link-failure propagation into the transfer scheduler missed
    /// it, so its rate is a fiction.
    TransferOnFailedLink {
        /// Scheduler id of the streaming transfer.
        req: u64,
        /// The failed link it still traverses.
        link: usize,
    },
    /// An active transfer has no matching `Prepared` journal entry — its
    /// 2PC context was lost, so neither commit nor abort can settle it.
    TransferWithoutPrepare {
        /// Scheduler id of the orphaned transfer.
        req: u64,
    },
    /// The latest committed journal record for a VM disagrees with the
    /// placement about where the VM lives.
    JournalPlacementMismatch {
        /// The disagreeing transaction.
        req: ReqId,
        /// The disputed VM.
        vm: VmId,
        /// Where the journal says it is.
        journal_host: HostId,
        /// Where the placement says it is.
        placement_host: HostId,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::VmLost { vm } => write!(f, "{vm} lost: no host lists it"),
            AuditViolation::VmDuplicated { vm } => write!(f, "{vm} duplicated across hosts"),
            AuditViolation::CapacityExceeded { host, used, limit } => {
                write!(f, "{host} over capacity: {used:.2} > {limit:.2}")
            }
            AuditViolation::DependentsColocated { host, a, b } => {
                write!(f, "dependent {a}/{b} co-located on {host}")
            }
            AuditViolation::OfflineHostGainedVm { host, vm } => {
                write!(f, "offline {host} gained {vm}")
            }
            AuditViolation::UnresolvedTxn { req, vm } => {
                write!(f, "{req} still prepared, holds {vm}")
            }
            AuditViolation::VmDoubleManaged { vm, a, b } => {
                write!(f, "{vm} managed by both {a} and {b}")
            }
            AuditViolation::TransferOnFailedLink { req, link } => {
                write!(f, "transfer {req} streams across failed link {link}")
            }
            AuditViolation::TransferWithoutPrepare { req } => {
                write!(f, "transfer {req} active with no prepared journal entry")
            }
            AuditViolation::JournalPlacementMismatch {
                req,
                vm,
                journal_host,
                placement_host,
            } => write!(
                f,
                "{req}: journal puts {vm} on {journal_host}, placement on {placement_host}"
            ),
        }
    }
}

/// Outcome of one auditor pass — clean when `violations` is empty.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Every invariant breach found, in check order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether every audited invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of breaches found.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// Whether the report holds no violations.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fold another report's findings into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.violations.extend(other.violations);
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("audit: clean");
        }
        writeln!(f, "audit: {} violation(s)", self.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Core placement invariants: every VM on exactly one host, no host over
/// capacity, no dependent pair co-located. O(vms + hosts).
pub fn audit_placement(placement: &Placement, deps: &DependencyGraph) -> AuditReport {
    let mut report = AuditReport::default();
    let mut seen: HashMap<VmId, usize> = HashMap::new();
    for h in 0..placement.host_count() {
        let h = HostId::from_index(h);
        for &vm in placement.vms_on(h) {
            *seen.entry(vm).or_insert(0) += 1;
        }
        let used = placement.used_capacity(h);
        let limit = placement.host_capacity(h);
        if used > limit + 1e-9 {
            report.violations.push(AuditViolation::CapacityExceeded {
                host: h,
                used,
                limit,
            });
        }
        let residents = placement.vms_on(h);
        for (i, &a) in residents.iter().enumerate() {
            for &b in &residents[i + 1..] {
                if deps.dependent(a, b) {
                    report
                        .violations
                        .push(AuditViolation::DependentsColocated { host: h, a, b });
                }
            }
        }
    }
    for vm in placement.vm_ids() {
        match seen.get(&vm).copied().unwrap_or(0) {
            0 => report.violations.push(AuditViolation::VmLost { vm }),
            1 => {}
            _ => report.violations.push(AuditViolation::VmDuplicated { vm }),
        }
    }
    report
}

/// Check that no committed move of this round landed on an offline host
/// (the `host_online` gate of the PREPARE path must have held).
pub fn audit_moves<I>(placement: &Placement, moves: I) -> AuditReport
where
    I: IntoIterator<Item = (VmId, HostId)>,
{
    let mut report = AuditReport::default();
    for (vm, to) in moves {
        if !placement.is_host_online(to) {
            report
                .violations
                .push(AuditViolation::OfflineHostGainedVm { host: to, vm });
        }
    }
    report
}

/// Journal/placement agreement: after settlement no transaction may be
/// left `Prepared`, and for each VM the latest committed record must
/// match where the placement says the VM lives. Later higher-id aborted
/// records are fine — rollback restores the previous committed
/// destination.
pub fn audit_journals<'a, I>(placement: &Placement, journals: I) -> AuditReport
where
    I: IntoIterator<Item = &'a IntentJournal>,
{
    let mut report = AuditReport::default();
    // latest committed record per VM across all journals; req ids of one
    // VM always come from its own rack's shim, so the id order is the
    // decision order. `BTreeMap` keeps the final iteration (and thus the
    // violation order in the report) deterministic (DET02).
    let mut latest: BTreeMap<VmId, (ReqId, HostId)> = BTreeMap::new();
    let mut rolled_back: BTreeMap<VmId, ReqId> = BTreeMap::new();
    for journal in journals {
        for (req, rec) in journal.records() {
            match rec.state {
                TxnState::Prepared => report
                    .violations
                    .push(AuditViolation::UnresolvedTxn { req, vm: rec.vm }),
                TxnState::Committed => {
                    let e = latest.entry(rec.vm).or_insert((req, rec.dst));
                    if req >= e.0 {
                        *e = (req, rec.dst);
                    }
                }
                TxnState::Aborted => {
                    let e = rolled_back.entry(rec.vm).or_insert(req);
                    if req > *e {
                        *e = req;
                    }
                }
            }
        }
    }
    for (vm, (req, dst)) in latest {
        // a later rolled-back attempt legitimately moved the VM back off
        // the committed destination
        if rolled_back.get(&vm).is_some_and(|&r| r > req) {
            continue;
        }
        let actual = placement.host_of(vm);
        if actual != dst {
            report
                .violations
                .push(AuditViolation::JournalPlacementMismatch {
                    req,
                    vm,
                    journal_host: dst,
                    placement_host: actual,
                });
        }
    }
    report
}

/// Exclusive management: across all shims, no VM may be claimed —
/// pending, in flight, or parked — by more than one manager at once.
/// Takes `(rack, managed VMs)` pairs; the VM lists need not be sorted.
/// A takeover or partition/heal cycle that leaves a VM on two managers'
/// books would let both replan the same VM and race their 2PC
/// transactions, so the failover machinery must keep the sets disjoint.
pub fn audit_managers<I, V>(claims: I) -> AuditReport
where
    I: IntoIterator<Item = (RackId, V)>,
    V: IntoIterator<Item = VmId>,
{
    let mut report = AuditReport::default();
    let mut owner: BTreeMap<VmId, RackId> = BTreeMap::new();
    let mut flagged: BTreeSet<(VmId, RackId)> = BTreeSet::new();
    for (rack, vms) in claims {
        for vm in vms {
            match owner.get(&vm) {
                Some(&first) if first != rack => {
                    // one violation per conflicting (vm, claimant) pair —
                    // a claimant listing the VM twice is not two conflicts
                    if flagged.insert((vm, rack)) {
                        report.violations.push(AuditViolation::VmDoubleManaged {
                            vm,
                            a: first,
                            b: rack,
                        });
                    }
                }
                Some(_) => {}
                None => {
                    owner.insert(vm, rack);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::{Inventory, RackId, VmSpec};

    fn cluster() -> (Placement, DependencyGraph) {
        let mut inv = Inventory::new();
        inv.add_rack(3, 10.0, 100.0);
        let mut p = Placement::new(&inv);
        for _ in 0..2 {
            let s = VmSpec {
                id: p.next_vm_id(),
                capacity: 4.0,
                value: 1.0,
                delay_sensitive: false,
            };
            p.add_vm(s, HostId(0)).unwrap();
        }
        (p, DependencyGraph::new(2))
    }

    #[test]
    fn healthy_placement_audits_clean() {
        let (p, deps) = cluster();
        let report = audit_placement(&p, &deps);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn colocated_dependents_are_flagged() {
        let (p, mut deps) = cluster();
        deps.add_dependency(VmId(0), VmId(1));
        let report = audit_placement(&p, &deps);
        assert_eq!(
            report.violations,
            vec![AuditViolation::DependentsColocated {
                host: HostId(0),
                a: VmId(0),
                b: VmId(1),
            }]
        );
    }

    #[test]
    fn offline_destination_is_flagged() {
        let (mut p, _) = cluster();
        p.set_host_online(HostId(1), false);
        let report = audit_moves(&p, [(VmId(0), HostId(1)), (VmId(1), HostId(2))]);
        assert_eq!(
            report.violations,
            vec![AuditViolation::OfflineHostGainedVm {
                host: HostId(1),
                vm: VmId(0),
            }]
        );
    }

    #[test]
    fn unresolved_and_mismatched_journals_are_flagged() {
        let (mut p, _) = cluster();
        let mut j = IntentJournal::new();
        // committed record agreeing with the placement: clean
        p.migrate(VmId(0), HostId(1)).unwrap();
        j.prepare(
            ReqId::new(RackId(0), 0),
            VmId(0),
            HostId(0),
            HostId(1),
            10,
            0,
        );
        j.commit(ReqId::new(RackId(0), 0));
        assert!(audit_journals(&p, [&j]).is_clean());
        // a zombie prepare is unresolved
        j.prepare(
            ReqId::new(RackId(0), 1),
            VmId(1),
            HostId(0),
            HostId(2),
            10,
            0,
        );
        let report = audit_journals(&p, [&j]);
        assert_eq!(report.len(), 1);
        assert!(matches!(
            report.violations[0],
            AuditViolation::UnresolvedTxn { vm: VmId(1), .. }
        ));
        // committed record contradicted by the placement
        j.commit(ReqId::new(RackId(0), 1));
        let report = audit_journals(&p, [&j]);
        assert!(matches!(
            report.violations[0],
            AuditViolation::JournalPlacementMismatch { vm: VmId(1), .. }
        ));
    }

    #[test]
    fn double_management_is_flagged_once_per_pair() {
        let clean = audit_managers([
            (RackId(0), vec![VmId(0), VmId(1)]),
            (RackId(1), vec![VmId(2)]),
        ]);
        assert!(clean.is_clean(), "{clean}");
        let report = audit_managers([
            (RackId(0), vec![VmId(0), VmId(1)]),
            (RackId(1), vec![VmId(1)]),
            // the same rack listing a VM twice is not double management
            (RackId(1), vec![VmId(1)]),
        ]);
        assert_eq!(
            report.violations,
            vec![AuditViolation::VmDoubleManaged {
                vm: VmId(1),
                a: RackId(0),
                b: RackId(1),
            }]
        );
    }

    #[test]
    fn rolled_back_retry_does_not_contradict_earlier_commit() {
        let (mut p, _) = cluster();
        let mut j = IntentJournal::new();
        j.prepare(
            ReqId::new(RackId(0), 0),
            VmId(0),
            HostId(0),
            HostId(1),
            10,
            0,
        );
        p.migrate(VmId(0), HostId(1)).unwrap();
        j.commit(ReqId::new(RackId(0), 0));
        // a later attempt prepared then rolled back: VM returns to host 1
        let mut j2 = IntentJournal::new();
        let (mut p2, deps) = (p.clone(), DependencyGraph::new(2));
        p2.migrate(VmId(0), HostId(2)).unwrap();
        j2.prepare(
            ReqId::new(RackId(0), 1),
            VmId(0),
            HostId(1),
            HostId(2),
            10,
            0,
        );
        j2.abort(&mut p2, &deps, ReqId::new(RackId(0), 1));
        assert!(audit_journals(&p2, [&j, &j2]).is_clean());
    }
}

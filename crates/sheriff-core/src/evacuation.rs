//! Host and rack evacuation — the "backup system" the paper assumes
//! resolves crash errors (Sec. III-A: "we do not take crash errors into
//! consideration since we assume that they could be resolved by backup
//! system"). This is that system: when a host fails or is drained for
//! maintenance, *every* VM on it (delay-sensitive ones included — staying
//! on a dead host is worse than a migration pause) is placed elsewhere by
//! the same matching machinery as VMMIGRATION.

use crate::vmmigration::{vmmigration, vmmigration_scoped, MigrationContext, MigrationPlan};
use dcn_sim::SheriffError;
use dcn_topology::{HostId, RackId, VmId};

fn check_region(ctx: &MigrationContext<'_>, region: &[RackId]) -> Result<(), SheriffError> {
    let rack_count = ctx.inventory.rack_count();
    for &r in region {
        if r.index() >= rack_count {
            return Err(SheriffError::Invalid {
                reason: format!(
                    "region rack {} out of range (rack count {rack_count})",
                    r.index()
                ),
            });
        }
    }
    Ok(())
}

/// Fallible [`evacuate_host`]: validates the host and region rack ids
/// against the inventory and returns a typed [`SheriffError`] instead of
/// panicking on an out-of-range index. An *empty* host is not an error —
/// the evacuation is simply a no-op plan, as before.
pub fn try_evacuate_host(
    ctx: &mut MigrationContext<'_>,
    host: HostId,
    region: &[RackId],
    max_rounds: usize,
) -> Result<MigrationPlan, SheriffError> {
    if host.index() >= ctx.inventory.host_count() {
        return Err(SheriffError::Invalid {
            reason: format!(
                "host {} out of range (host count {})",
                host.index(),
                ctx.inventory.host_count()
            ),
        });
    }
    check_region(ctx, region)?;
    Ok(evacuate_host(ctx, host, region, max_rounds))
}

/// Fallible [`drain_rack`]; see [`try_evacuate_host`].
pub fn try_drain_rack(
    ctx: &mut MigrationContext<'_>,
    rack: RackId,
    region: &[RackId],
    max_rounds: usize,
) -> Result<MigrationPlan, SheriffError> {
    if rack.index() >= ctx.inventory.rack_count() {
        return Err(SheriffError::Invalid {
            reason: format!(
                "rack {} out of range (rack count {})",
                rack.index(),
                ctx.inventory.rack_count()
            ),
        });
    }
    check_region(ctx, region)?;
    Ok(drain_rack(ctx, rack, region, max_rounds))
}

/// Evacuate every VM from `host`, preferring the shim's own region and
/// widening to the whole network when the region lacks capacity.
///
/// Unlike Alg. 3's alert path, an evacuation must not leave VMs behind:
/// when `plan.unplaced` is non-empty after the regional pass, a global
/// pass retries against all racks.
pub fn evacuate_host(
    ctx: &mut MigrationContext<'_>,
    host: HostId,
    region: &[RackId],
    max_rounds: usize,
) -> MigrationPlan {
    let victims: Vec<VmId> = ctx.placement.vms_on(host).to_vec();
    if victims.is_empty() {
        return MigrationPlan::default();
    }
    let mut plan = vmmigration(ctx, &victims, region, max_rounds);
    if !plan.unplaced.is_empty() {
        let leftover = std::mem::take(&mut plan.unplaced);
        let all_racks: Vec<RackId> = (0..ctx.inventory.rack_count())
            .map(RackId::from_index)
            .collect();
        let global = vmmigration(ctx, &leftover, &all_racks, max_rounds);
        plan.absorb(global);
    }
    plan
}

/// Drain an entire rack (ToR failure, rack maintenance): evacuate each of
/// its hosts. Destination racks exclude the draining rack itself.
pub fn drain_rack(
    ctx: &mut MigrationContext<'_>,
    rack: RackId,
    region: &[RackId],
    max_rounds: usize,
) -> MigrationPlan {
    let mut plan = MigrationPlan::default();
    let region_without: Vec<RackId> = region.iter().copied().filter(|&r| r != rack).collect();
    let hosts: Vec<HostId> = ctx.inventory.hosts_in(rack).to_vec();
    for host in hosts {
        // a drained rack cannot host evacuees from its own other hosts:
        // temporarily treat the rack's hosts as unavailable by listing
        // only external racks as targets
        let victims: Vec<VmId> = ctx.placement.vms_on(host).to_vec();
        if victims.is_empty() {
            continue;
        }
        let mut p = vmmigration_scoped(ctx, &victims, &region_without, max_rounds, false);
        // retry leftovers globally, still excluding the draining rack
        if !p.unplaced.is_empty() {
            let leftover = std::mem::take(&mut p.unplaced);
            let others: Vec<RackId> = (0..ctx.inventory.rack_count())
                .map(RackId::from_index)
                .filter(|&r| r != rack)
                .collect();
            p.absorb(vmmigration_scoped(
                ctx, &leftover, &others, max_rounds, false,
            ));
        }
        plan.absorb(p);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::{Cluster, ClusterConfig};
    use dcn_sim::{RackMetric, SimConfig};
    use dcn_topology::fattree::{self, FatTreeConfig};

    fn cluster(seed: u64) -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.0,
                skew: 2.0,
                seed,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        )
    }

    fn busiest_host(c: &Cluster) -> HostId {
        (0..c.placement.host_count())
            .map(HostId::from_index)
            .max_by_key(|&h| c.placement.vms_on(h).len())
            .unwrap()
    }

    #[test]
    fn evacuation_empties_the_host() {
        let mut c = cluster(31);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let host = busiest_host(&c);
        let vm_count = c.placement.vms_on(host).len();
        assert!(vm_count > 0);
        let rack = c.placement.rack_of_host(host);
        let region = c.dcn.neighbor_racks(rack, 2);
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let plan = evacuate_host(&mut ctx, host, &region, 5);
        assert!(c.placement.vms_on(host).is_empty(), "host not emptied");
        assert_eq!(plan.moves.len(), vm_count);
        assert!(plan.unplaced.is_empty());
    }

    #[test]
    fn evacuation_moves_delay_sensitive_vms_too() {
        let mut c = cluster(32);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        // find a host with a delay-sensitive VM
        let target = (0..c.placement.host_count())
            .map(HostId::from_index)
            .find(|&h| {
                c.placement
                    .vms_on(h)
                    .iter()
                    .any(|&vm| c.placement.spec(vm).delay_sensitive)
            });
        let Some(host) = target else {
            return; // seed produced none; other seeds cover this
        };
        let rack = c.placement.rack_of_host(host);
        let region = c.dcn.neighbor_racks(rack, 4);
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        evacuate_host(&mut ctx, host, &region, 5);
        assert!(c.placement.vms_on(host).is_empty());
    }

    #[test]
    fn drain_rack_clears_every_host_and_avoids_itself() {
        let mut c = cluster(33);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let rack = RackId(0);
        let total_vms: usize = c
            .dcn
            .inventory
            .hosts_in(rack)
            .iter()
            .map(|&h| c.placement.vms_on(h).len())
            .sum();
        assert!(total_vms > 0);
        let region = c.dcn.neighbor_racks(rack, 4);
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let plan = drain_rack(&mut ctx, rack, &region, 5);
        assert_eq!(plan.moves.len(), total_vms);
        for &h in c.dcn.inventory.hosts_in(rack) {
            assert!(c.placement.vms_on(h).is_empty(), "host {h} not drained");
        }
        // nothing landed back on the drained rack
        for m in &plan.moves {
            assert_ne!(c.placement.rack_of_host(m.to), rack);
        }
    }

    #[test]
    fn try_variants_reject_out_of_range_ids() {
        let mut c = cluster(35);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let host_count = c.placement.host_count();
        let rack_count = c.dcn.inventory.rack_count();
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let err = try_evacuate_host(&mut ctx, HostId::from_index(host_count), &[RackId(0)], 3)
            .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let err =
            try_drain_rack(&mut ctx, RackId::from_index(rack_count), &[RackId(0)], 3).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let err = try_evacuate_host(&mut ctx, HostId(0), &[RackId::from_index(rack_count)], 3)
            .unwrap_err();
        assert!(err.to_string().contains("region rack"), "{err}");
        // in-range ids behave exactly like the panicking entry point
        let plan = try_evacuate_host(&mut ctx, HostId(0), &[RackId(1)], 3).unwrap();
        assert!(plan.unplaced.is_empty());
    }

    #[test]
    fn evacuating_empty_host_is_noop() {
        let mut c = cluster(34);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let empty = (0..c.placement.host_count())
            .map(HostId::from_index)
            .find(|&h| c.placement.vms_on(h).is_empty());
        let Some(host) = empty else { return };
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let plan = evacuate_host(&mut ctx, host, &[RackId(1)], 5);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.search_space, 0);
    }
}

//! Alg. 2 — the PRIORITY victim-selection function.
//!
//! "The standard of selection is: firstly remove delay-sensitive flows,
//! and then select the VM's with lowest value but largest size. We mimic a
//! dynamic Knapsack algorithm by taking allowed capacity as knapsack size
//! and picking up as many VM's with lowest value as possible. … Mbps is
//! the minimum capacity unit. Specifically, if the priority parameter is
//! one, we only pick one VM with the highest ALERT."

use dcn_topology::{Placement, VmId};

/// How much may be selected (the `w` switch of Alg. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// `w = α` or `w = β`: release up to this much capacity
    /// (α·s.capacity or β·ToR.capacity, computed by the caller).
    Capacity(f64),
    /// `w = 1`: pick exactly the single VM with the highest ALERT.
    SingleMaxAlert,
}

/// Select migration victims from `candidates` under `budget`.
///
/// * Delay-sensitive VMs are removed first (Alg. 2 line 1).
/// * Under [`Budget::Capacity`], a dynamic-programming knapsack over
///   integer capacity units chooses the subset that releases the most
///   capacity within the budget, breaking ties toward the lowest total
///   value (migrating cheap VMs first).
/// * Under [`Budget::SingleMaxAlert`], the single candidate with the
///   highest `alert_of` value is returned.
pub fn priority(
    candidates: &[VmId],
    placement: &Placement,
    alert_of: impl Fn(VmId) -> f64,
    budget: Budget,
) -> Vec<VmId> {
    let eligible: Vec<VmId> = candidates
        .iter()
        .copied()
        .filter(|&vm| !placement.spec(vm).delay_sensitive)
        .collect();
    if eligible.is_empty() {
        return Vec::new();
    }
    match budget {
        Budget::SingleMaxAlert => {
            let best = eligible
                .into_iter()
                .max_by(|&a, &b| {
                    alert_of(a)
                        .partial_cmp(&alert_of(b))
                        .expect("alert values are never NaN")
                        .then(b.cmp(&a)) // deterministic tie-break: lowest id
                })
                .expect("non-empty by check above");
            vec![best]
        }
        Budget::Capacity(cap) => knapsack_lowest_value(&eligible, placement, cap),
    }
}

/// Dynamic knapsack (Alg. 2's `d[0..C]` table): capacity in integer Mbps
/// units; `d[j]` = minimum total value of a subset with total capacity
/// exactly `j`, with parent pointers for reconstruction. The result is the
/// subset at the largest reachable `j ≤ C` (most capacity released),
/// lowest `d[j]` among ties.
fn knapsack_lowest_value(vms: &[VmId], placement: &Placement, budget: f64) -> Vec<VmId> {
    let c = budget.floor() as usize;
    if c == 0 {
        return Vec::new();
    }
    const LARGE: f64 = f64::INFINITY;
    let mut d = vec![LARGE; c + 1];
    d[0] = 0.0;
    // keep[i][j]: item i was taken on the optimal path to capacity j at
    // the time item i was processed. A per-cell parent pointer is NOT
    // enough: a later item can improve d[from] and silently reroute the
    // stored path, double-counting items. The full table makes the
    // reverse reconstruction exact.
    let mut keep = vec![false; vms.len() * (c + 1)];
    let weights: Vec<usize> = vms
        .iter()
        .map(|&vm| placement.spec(vm).capacity.round().max(1.0) as usize)
        .collect();
    for (i, &vm) in vms.iter().enumerate() {
        let value = placement.spec(vm).value;
        let w = weights[i];
        if w > c {
            continue;
        }
        // 0/1 knapsack: iterate capacity downward
        for j in (w..=c).rev() {
            let from = j - w;
            if d[from].is_finite() && d[from] + value < d[j] {
                d[j] = d[from] + value;
                keep[i * (c + 1) + j] = true;
            }
        }
    }
    // largest reachable capacity (the paper "pick up as many … as possible")
    let Some(best_j) = (1..=c).rev().find(|&j| d[j].is_finite()) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut j = best_j;
    for i in (0..vms.len()).rev() {
        if j == 0 {
            break;
        }
        if keep[i * (c + 1) + j] {
            out.push(vms[i]);
            j -= weights[i];
        }
    }
    debug_assert_eq!(j, 0, "knapsack reconstruction must land on zero");
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::{HostId, Inventory, VmSpec};

    /// Build a placement holding VMs with the given (capacity, value,
    /// delay_sensitive) specs, all on one big host.
    fn placement_with(specs: &[(f64, f64, bool)]) -> (Placement, Vec<VmId>) {
        let mut inv = Inventory::new();
        inv.add_rack(1, 10_000.0, 10_000.0);
        let mut p = Placement::new(&inv);
        let mut ids = Vec::new();
        for &(cap, value, ds) in specs {
            let s = VmSpec {
                id: p.next_vm_id(),
                capacity: cap,
                value,
                delay_sensitive: ds,
            };
            ids.push(p.add_vm(s, HostId(0)).expect("fits"));
        }
        (p, ids)
    }

    #[test]
    fn removes_delay_sensitive_first() {
        let (p, ids) = placement_with(&[(5.0, 1.0, true), (5.0, 9.0, false)]);
        let out = priority(&ids, &p, |_| 0.5, Budget::Capacity(10.0));
        assert_eq!(out, vec![ids[1]], "delay-sensitive VM must not be picked");
    }

    #[test]
    fn single_max_alert_picks_highest() {
        let (p, ids) = placement_with(&[(5.0, 1.0, false), (5.0, 1.0, false), (5.0, 1.0, false)]);
        let alerts = [0.91, 0.99, 0.95];
        let out = priority(&ids, &p, |vm| alerts[vm.index()], Budget::SingleMaxAlert);
        assert_eq!(out, vec![ids[1]]);
    }

    #[test]
    fn knapsack_fills_budget_with_lowest_value() {
        // budget 10: {A(6,v2), B(4,v1)} releases 10 at value 3;
        // {C(10, v9)} also releases 10 but at value 9 — must prefer A+B.
        let (p, ids) = placement_with(&[(6.0, 2.0, false), (4.0, 1.0, false), (10.0, 9.0, false)]);
        let out = priority(&ids, &p, |_| 0.0, Budget::Capacity(10.0));
        let mut got = out.clone();
        got.sort();
        assert_eq!(got, vec![ids[0], ids[1]]);
    }

    #[test]
    fn knapsack_respects_budget() {
        let (p, ids) = placement_with(&[(8.0, 1.0, false), (7.0, 1.0, false), (6.0, 1.0, false)]);
        let out = priority(&ids, &p, |_| 0.0, Budget::Capacity(9.0));
        let total: f64 = out.iter().map(|&vm| p.spec(vm).capacity).sum();
        assert!(total <= 9.0, "selected {total} > budget");
        assert_eq!(out.len(), 1, "only one VM fits under 9");
    }

    #[test]
    fn knapsack_prefers_max_released_capacity() {
        // budget 12: single 12-cap VM releases more than the 5+5 pair
        let (p, ids) = placement_with(&[(5.0, 1.0, false), (5.0, 1.0, false), (12.0, 5.0, false)]);
        let out = priority(&ids, &p, |_| 0.0, Budget::Capacity(12.0));
        assert_eq!(out, vec![ids[2]]);
    }

    #[test]
    fn zero_budget_or_oversized_vms_select_nothing() {
        let (p, ids) = placement_with(&[(50.0, 1.0, false)]);
        assert!(priority(&ids, &p, |_| 0.0, Budget::Capacity(0.4)).is_empty());
        assert!(priority(&ids, &p, |_| 0.0, Budget::Capacity(10.0)).is_empty());
    }

    #[test]
    fn empty_candidates_ok() {
        let (p, _) = placement_with(&[(5.0, 1.0, false)]);
        assert!(priority(&[], &p, |_| 0.0, Budget::Capacity(10.0)).is_empty());
        assert!(priority(&[], &p, |_| 0.0, Budget::SingleMaxAlert).is_empty());
    }

    #[test]
    fn all_delay_sensitive_selects_nothing_even_single() {
        let (p, ids) = placement_with(&[(5.0, 1.0, true), (5.0, 1.0, true)]);
        assert!(priority(&ids, &p, |_| 0.9, Budget::SingleMaxAlert).is_empty());
    }
}

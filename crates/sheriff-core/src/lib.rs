//! # sheriff-core
//!
//! The primary contribution of *Sheriff: A Regional Pre-Alert Management
//! Scheme in Data Center Networks* (ICPP'15): the per-rack shim
//! controllers and their management algorithms —
//!
//! * Alg. 1 `pre_alert_management` — the framework routine dispatching on
//!   alert type,
//! * Alg. 2 [`priority()`] — knapsack victim selection,
//! * Alg. 3 [`vmmigration()`] — minimum-weight-matching migration with
//!   negotiation,
//! * Alg. 4 [`request_migration`] — FCFS ACK/REJECT at the destination,
//! * Alg. 5 [`kmedian::local_search`] — the p-swap local search with
//!   ratio 3 + 2/p, plus the VMMIGRATION → k-median transformation,
//!
//! together with FLOWREROUTE, the centralized-manager baseline, a
//! deterministic sequential runtime ([`Sheriff`]) and a threaded runtime
//! with optimistic planning and FCFS commit ([`distributed_round_obs`],
//! or [`DistributedRuntime`] behind the [`Runtime`] trait).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert_mgmt;
pub mod audit;
pub mod builder;
pub mod centralized;
pub mod channel;
pub mod distributed;
pub mod evacuation;
pub mod fabric;
pub mod failure;
pub mod journal;
pub mod kmedian;
pub mod matching;
pub mod metrics;
pub mod priority;
pub mod protocol;
pub mod request;
pub mod reroute;
pub mod runtime;
pub mod sharded;
pub mod shim;
pub mod strategy;
pub mod system;
pub mod vmmigration;

pub use alert_mgmt::{pre_alert_management, pre_alert_management_obs, ShimOutcome};
pub use audit::{
    audit_journals, audit_managers, audit_moves, audit_placement, AuditReport, AuditViolation,
};
pub use builder::SystemBuilder;
#[allow(deprecated)]
#[cfg(feature = "legacy")]
pub use centralized::centralized_migration;
pub use centralized::{
    centralized_migration_chunked, centralized_migration_chunked_obs, centralized_migration_obs,
    destination_tors, destination_tors_obs, kmedian_migration, kmedian_migration_obs,
};
pub use channel::{CrashWindow, LinkFaultWindow, NetStats, PartitionWindow, SimNet};
#[allow(deprecated)]
#[cfg(feature = "legacy")]
pub use distributed::distributed_round;
pub use distributed::{distributed_round_obs, DistributedReport};
pub use evacuation::{drain_rack, evacuate_host, try_drain_rack, try_evacuate_host};
#[allow(deprecated)]
#[cfg(feature = "legacy")]
pub use fabric::fabric_round;
pub use fabric::{fabric_round_failover_obs, fabric_round_obs, FabricConfig};
pub use failure::{FailureDetector, RegionFailover, ShimHealth};
pub use journal::{AbortOutcome, IntentJournal, RecoveryReport, TxnRecord, TxnState};
pub use kmedian::{
    exact_optimal, local_search, local_search_from, local_search_from_obs, KMedianInstance,
    KMedianSolution,
};
pub use matching::{min_cost_assignment, min_cost_assignment_padded};
pub use metrics::{RatioPoint, Series, Totals};
pub use priority::{priority, Budget};
pub use protocol::{
    BackoffPolicy, DedupLog, Liveness, RejectReason, ReqId, ShimEndpoint, ShimMsg, TwoPhaseReply,
    Verdict,
};
pub use request::{request_migration, RequestOutcome};
pub use reroute::{flow_reroute, flow_reroute_balanced, RerouteReport};
pub use runtime::{
    CentralizedRuntime, DistributedRuntime, FabricRuntime, RoundOutcome, RunCtx, Runtime,
    ShardedRuntime,
};
#[allow(deprecated)]
#[cfg(feature = "legacy")]
pub use sharded::sharded_round;
pub use sharded::{sharded_round_obs, ShardedReport};
pub use sheriff_transfer::{RouteStrategy, TransferConfig, TransferScheduler};
pub use shim::{RoundReport, Sheriff};
pub use strategy::{run_policy, AlertPolicy, StrategyOutcome};
pub use system::{StepReport, System};
pub use vmmigration::{
    try_vmmigration, try_vmmigration_scoped, vmmigration, vmmigration_scoped,
    vmmigration_scoped_obs, MigrationContext, MigrationPlan, Move,
};

// The construction error type lives in `dcn-sim` (both layers raise it);
// re-exported here so users of the management crate see one error type.
pub use dcn_sim::SheriffError;

/// The deterministic discrete-event core the fabric runtime is built on,
/// re-exported so embedders can schedule their own virtual-time actors
/// alongside Sheriff's (`sheriff_core::sim::Simulation` et al.).
pub use sheriff_sim as sim;

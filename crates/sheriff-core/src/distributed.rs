//! The distributed shim runtimes: threaded planning with protocol-checked
//! commits, and a message-passing fabric that survives a faulty channel.
//!
//! Two runtimes share one planning core (PRIORITY victim selection +
//! min-cost matching on a snapshot, Algs. 1–3):
//!
//! * [`distributed_round_obs`] — each shim plans on its own thread, then all
//!   commits funnel through the destination racks' [`ShimEndpoint`]s in
//!   deterministic rack order (Alg. 4 FCFS, Sec. II-B/V-B — "each local
//!   manager adjusts network traffic locally, they need to communicate
//!   between each other to avoid conflictions"). The shared mutex guards
//!   only the placement snapshot/commit; the protocol layer decides.
//! * [`fabric_round_obs`] — the same negotiation as explicit
//!   REQUEST/ACK/REJECT messages over a seeded, faulty [`SimNet`]
//!   channel, with per-request deadlines, exponential backoff with
//!   jitter, idempotent commits via request-id dedup, heartbeat liveness,
//!   and a degradation ladder (exclude dead racks → fall back to
//!   rack-local evacuation → report unplaced).
//!
//! With a [`ChannelFaults::reliable`] channel and no crashed shims,
//! the fabric reproduces the threaded runtime move for move: both
//! issue the identical sequence of Alg. 4 requests in the identical
//! order, so the ACK/REJECT outcomes — and therefore the plans — match.

use crate::audit::{audit_journals, audit_managers, audit_moves, audit_placement, AuditReport};
use crate::channel::{CrashWindow, PartitionWindow, SimNet};
use crate::failure::{RegionFailover, ShimHealth};
use crate::journal::TxnState;
use crate::matching::{min_cost_assignment_padded, FORBIDDEN};
use crate::priority::{priority, Budget};
use crate::protocol::{
    BackoffPolicy, Liveness, RejectReason, ReqId, ShimEndpoint, ShimMsg, TwoPhaseReply, Verdict,
};
use crate::vmmigration::{MigrationPlan, Move};
use dcn_sim::engine::Cluster;
use dcn_sim::{Alert, AlertSource, ChannelFaults, RackMetric, SimConfig};
use dcn_topology::{DependencyGraph, HostId, Inventory, Placement, RackId, VmId};
use parking_lot::Mutex;
use sheriff_obs::{emit, Event, EventSink, RejectKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Map a protocol-level REJECT payload to its observability label.
fn reject_kind(reason: RejectReason) -> RejectKind {
    match reason {
        RejectReason::Capacity => RejectKind::Capacity,
        RejectReason::Conflict => RejectKind::Conflict,
        RejectReason::Noop => RejectKind::Noop,
        RejectReason::Expired => RejectKind::Expired,
        RejectReason::StaleEpoch => RejectKind::Stale,
    }
}

/// Result of one distributed round (either runtime).
#[derive(Debug, Clone, Default)]
pub struct DistributedReport {
    /// Merged migration plan across all shims.
    pub plan: MigrationPlan,
    /// Commit attempts that were rejected and replanned.
    pub retries: usize,
    /// Shims that participated.
    pub shims: usize,
    /// Messages lost by the channel (fabric runtime only).
    pub drops: usize,
    /// Requests whose reply deadline expired at least once.
    pub timeouts: usize,
    /// Retransmissions sent after timeouts.
    pub resends: usize,
    /// Duplicate REQUEST deliveries absorbed by dedup logs.
    pub dedup_hits: usize,
    /// Shims that had to run with part of their region presumed dead.
    pub degraded_shims: usize,
    /// Alerted shims that were crashed and could not participate.
    pub crashed_shims: usize,
    /// Virtual ticks the fabric round took (0 for the threaded runtime).
    pub ticks: u64,
    /// Transactions journalled as `Prepared` (fabric runtime only).
    pub txn_prepared: usize,
    /// Transactions that reached `Committed`.
    pub txn_committed: usize,
    /// Transactions that ended `Aborted` (lease expiry, ABORT, or the
    /// end-of-round sweep).
    pub txn_aborted: usize,
    /// Shims that crashed mid-round and replayed their journal on
    /// recovery.
    pub recoveries: usize,
    /// Regional takeovers: a Dead shim's racks were handed to a neighbor
    /// (each one bumps the rack's epoch).
    pub takeovers: usize,
    /// 2PC messages fenced for carrying a pre-takeover epoch.
    pub fenced: usize,
    /// Shims that planned while cut off from part of their region by an
    /// active network partition (degraded local handling).
    pub partition_degraded: usize,
    /// Pending VMs dropped at partition heal because another manager
    /// handled them during the cut.
    pub reconciliations: usize,
    /// Post-round invariant audit (clean when no violations).
    pub audit: AuditReport,
}

/// One planned assignment awaiting the destination's verdict.
#[derive(Debug, Clone, Copy)]
struct Proposal {
    vm: VmId,
    dest: HostId,
    cost: f64,
}

/// Alg. 1/2: pick migration victims for one rack's alerts on a snapshot.
/// Returns the selected set plus the size of the candidate pool PRIORITY
/// examined (for the `victims_selected` observability event).
pub(crate) fn select_victims(
    snapshot: &Placement,
    inventory: &Inventory,
    sim: &SimConfig,
    rack: RackId,
    alerts: &[Alert],
    alert_values: &[f64],
) -> (Vec<VmId>, usize) {
    let mut set: Vec<VmId> = Vec::new();
    let mut candidates = 0usize;
    let mut tor_alert = false;
    for alert in alerts.iter().filter(|a| a.rack == rack) {
        match alert.source {
            AlertSource::Host(h) => {
                let f: Vec<VmId> = snapshot.vms_on(h).to_vec();
                candidates += f.len();
                set.extend(priority(
                    &f,
                    snapshot,
                    |vm| alert_values[vm.index()],
                    Budget::SingleMaxAlert,
                ));
            }
            AlertSource::LocalTor(_) => tor_alert = true,
            AlertSource::OuterSwitch(_) => {} // reroute path not simulated here
        }
    }
    if tor_alert {
        let mut f: Vec<VmId> = Vec::new();
        for &host in inventory.hosts_in(rack) {
            f.extend_from_slice(snapshot.vms_on(host));
        }
        candidates += f.len();
        let budget = sim.beta * inventory.rack(rack).tor_capacity;
        set.extend(priority(
            &f,
            snapshot,
            |vm| alert_values[vm.index()],
            Budget::Capacity(budget),
        ));
    }
    set.sort_unstable();
    set.dedup();
    (set, candidates)
}

/// Destination slots for a shim: every host of the given racks, plus its
/// own rack's hosts (the rack-local fallback of the degradation ladder).
fn region_slots(inventory: &Inventory, region_racks: &[RackId], rack: RackId) -> Vec<HostId> {
    let mut slots: Vec<HostId> = Vec::new();
    for &r in region_racks.iter().chain(std::iter::once(&rack)) {
        slots.extend_from_slice(inventory.hosts_in(r));
    }
    slots
}

/// Alg. 3's matching on a snapshot: returns the accepted proposals in
/// victim order, the victims left unassigned, and the explored search
/// space.
fn plan_proposals(
    snapshot: &Placement,
    deps: &DependencyGraph,
    metric: &RackMetric,
    sim: &SimConfig,
    pending: &[VmId],
    slot_hosts: &[HostId],
    excluded: &[(VmId, HostId)],
) -> (Vec<Proposal>, Vec<VmId>, usize) {
    if pending.is_empty() || slot_hosts.is_empty() {
        return (Vec::new(), pending.to_vec(), 0);
    }
    let search_space = pending.len() * slot_hosts.len();
    let mut cost = vec![vec![FORBIDDEN; slot_hosts.len()]; pending.len()];
    let mut adjusted = vec![vec![FORBIDDEN; slot_hosts.len()]; pending.len()];
    for (i, &vm) in pending.iter().enumerate() {
        let spec = snapshot.spec(vm);
        let from_host = snapshot.host_of(vm);
        let from_rack = snapshot.rack_of(vm);
        for (j, &host) in slot_hosts.iter().enumerate() {
            if host == from_host
                || excluded.contains(&(vm, host))
                || snapshot.free_capacity(host) < spec.capacity
                || deps.conflicts_on_host(vm, host, snapshot)
            {
                continue;
            }
            let to_rack = snapshot.rack_of_host(host);
            if !metric.reachable(from_rack, to_rack) {
                continue;
            }
            let chi = deps.chi(vm, to_rack, snapshot);
            let c = metric.migration_cost(sim, spec.capacity, from_rack, to_rack, chi);
            let post_util =
                (snapshot.used_capacity(host) + spec.capacity) / snapshot.host_capacity(host);
            cost[i][j] = c;
            adjusted[i][j] = c + sim.load_balance_weight * post_util;
        }
    }
    let (assignment, _) = min_cost_assignment_padded(&adjusted);
    let mut proposals = Vec::new();
    let mut unassigned = Vec::new();
    for (i, assigned) in assignment.into_iter().enumerate() {
        match assigned {
            Some(j) => proposals.push(Proposal {
                vm: pending[i],
                dest: slot_hosts[j],
                cost: cost[i][j],
            }),
            None => unassigned.push(pending[i]),
        }
    }
    (proposals, unassigned, search_space)
}

/// Per-shim negotiation state shared by both runtimes' bookkeeping.
struct ShimState {
    rack: RackId,
    pending: Vec<VmId>,
    slots: Vec<HostId>,
    excluded: Vec<(VmId, HostId)>,
    plan: MigrationPlan,
    retries: usize,
    seq: u32,
    active: bool,
}

/// Run one management round with every alerted shim planning on its own
/// thread and committing through the destination racks' protocol
/// endpoints in deterministic rack order.
///
/// `alert_values[vm]` supplies the ALERT magnitude for PRIORITY's `w = 1`
/// branch. Mutates `cluster.placement` in place on return.
#[cfg(feature = "legacy")]
#[deprecated(
    since = "0.1.0",
    note = "use `DistributedRuntime` via the `Runtime` trait, or `distributed_round_obs`"
)]
pub fn distributed_round(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    max_retry: usize,
) -> DistributedReport {
    distributed_round_obs(
        cluster,
        metric,
        alerts,
        alert_values,
        max_retry,
        &mut sheriff_obs::NullSink,
    )
}

/// The threaded shim round with an [`EventSink`] observing the
/// negotiation (the deprecated `distributed_round` wrapper is this with
/// a [`NullSink`](sheriff_obs::NullSink), behind the `legacy` feature).
///
/// Planning still runs one thread per shim; events are emitted only from
/// the single-threaded victim-selection and commit phases, in
/// deterministic rack/request order, so the event stream is reproducible
/// and the sink needs no synchronization.
pub fn distributed_round_obs<S: EventSink + ?Sized>(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    max_retry: usize,
    sink: &mut S,
) -> DistributedReport {
    let mut racks: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
    racks.sort_unstable();
    racks.dedup();
    if racks.is_empty() {
        return DistributedReport::default();
    }

    let deps = &cluster.deps;
    let inventory = &cluster.dcn.inventory;
    let sim = &cluster.sim;
    let shared = Mutex::new(cluster.placement.clone());
    let mut endpoints: Vec<ShimEndpoint> = (0..cluster.dcn.rack_count())
        .map(|r| ShimEndpoint::new(RackId::from_index(r)))
        .collect();

    // victim selection on the initial snapshot (Alg. 1)
    let mut states: Vec<ShimState> = {
        let snapshot = shared.lock().clone();
        racks
            .iter()
            .map(|&rack| {
                let (pending, candidates) =
                    select_victims(&snapshot, inventory, sim, rack, alerts, alert_values);
                emit(sink, || Event::VictimsSelected {
                    rack: rack.index() as u64,
                    candidates: candidates as u64,
                    selected: pending.len() as u64,
                });
                let region = cluster.dcn.neighbor_racks(rack, sim.region_hops);
                let slots = region_slots(inventory, &region, rack);
                ShimState {
                    rack,
                    active: !pending.is_empty() && !slots.is_empty(),
                    pending,
                    slots,
                    excluded: Vec::new(),
                    plan: MigrationPlan::default(),
                    retries: 0,
                    seq: 0,
                }
            })
            .collect()
    };

    for _round in 0..=max_retry {
        let idxs: Vec<usize> = (0..states.len()).filter(|&i| states[i].active).collect();
        if idxs.is_empty() {
            break;
        }
        // optimistic planning, one thread per active shim, on one snapshot
        let snapshot = shared.lock().clone();
        let proposals: Vec<(Vec<Proposal>, Vec<VmId>, usize)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = idxs
                .iter()
                .map(|&i| {
                    let st = &states[i];
                    let snapshot = &snapshot;
                    scope.spawn(move |_| {
                        plan_proposals(
                            snapshot,
                            deps,
                            metric,
                            sim,
                            &st.pending,
                            &st.slots,
                            &st.excluded,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("planner thread panicked"))
                .collect()
        })
        .expect("thread scope failed");

        // pessimistic commit: FCFS through each destination's endpoint,
        // shims in rack order, requests in matching order
        let mut placement = shared.lock();
        for (&i, (props, unassigned, space)) in idxs.iter().zip(proposals) {
            let st = &mut states[i];
            st.plan.search_space += space;
            emit(sink, || Event::PlanComputed {
                rack: st.rack.index() as u64,
                proposals: props.len() as u64,
                unassigned: unassigned.len() as u64,
                search_space: space as u64,
            });
            let mut next_pending = unassigned;
            let mut progressed = false;
            for p in props {
                let from = placement.host_of(p.vm);
                let dest_rack = placement.rack_of_host(p.dest);
                let req_id = ReqId::new(st.rack, st.seq);
                st.seq += 1;
                emit(sink, || Event::RequestSent {
                    req: req_id.0,
                    vm: p.vm.index() as u64,
                    dest_host: p.dest.index() as u64,
                    attempt: 1,
                });
                match endpoints[dest_rack.index()].handle_request(
                    &mut placement,
                    deps,
                    req_id,
                    p.vm,
                    p.dest,
                ) {
                    Verdict::Ack => {
                        emit(sink, || Event::AckReceived {
                            req: req_id.0,
                            vm: p.vm.index() as u64,
                        });
                        emit(sink, || Event::MigrationCommitted {
                            vm: p.vm.index() as u64,
                            from_host: from.index() as u64,
                            to_host: p.dest.index() as u64,
                            cost: p.cost,
                        });
                        sink.counter("migrations.committed", 1);
                        st.plan.moves.push(Move {
                            vm: p.vm,
                            from,
                            to: p.dest,
                            cost: p.cost,
                        });
                        st.plan.total_cost += p.cost;
                        progressed = true;
                    }
                    Verdict::Reject(reason) => {
                        emit(sink, || Event::RejectReceived {
                            req: req_id.0,
                            vm: p.vm.index() as u64,
                            reason: reject_kind(reason),
                        });
                        sink.counter("migrations.rejected", 1);
                        st.plan.rejected += 1;
                        st.retries += 1;
                        st.excluded.push((p.vm, p.dest));
                        next_pending.push(p.vm);
                    }
                }
            }
            st.pending = next_pending;
            st.active = progressed && !st.pending.is_empty();
        }
    }

    let mut report = DistributedReport {
        shims: racks.len(),
        ..DistributedReport::default()
    };
    for mut st in states {
        st.plan.unplaced.extend(st.pending);
        report.plan.absorb(st.plan);
        report.retries += st.retries;
    }
    report.dedup_hits = endpoints.iter().map(|e| e.dedup_hits()).sum();
    cluster.placement = shared.into_inner();
    report.audit = audit_placement(&cluster.placement, &cluster.deps);
    report.audit.merge(audit_moves(
        &cluster.placement,
        report.plan.moves.iter().map(|m| (m.vm, m.to)),
    ));
    report
}

/// Configuration of the message-passing fabric runtime.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Channel fault model (drop/duplicate/reorder/delay).
    pub faults: ChannelFaults,
    /// Seed for the channel's fault RNG.
    pub seed: u64,
    /// Replan rounds per shim after the first, mirroring
    /// [`distributed_round_obs`]'s `max_retry`.
    pub max_retry: usize,
    /// Timeout/retransmission policy per request.
    pub backoff: BackoffPolicy,
    /// Ticks to collect `Hello`s before the first planning round; must
    /// exceed the channel's maximum delay or live racks look dead.
    pub hello_window: u64,
    /// Interval between liveness beacons.
    pub heartbeat_period: u64,
    /// Silence (in ticks) after which a rack is presumed dead.
    pub liveness_deadline: u64,
    /// Hard cap on virtual time — a deadlock backstop; unresolved
    /// requests at the cap are abandoned and their VMs reported unplaced.
    pub max_ticks: u64,
    /// Shim crash schedule in virtual time. A window with `crash_at == 0`
    /// and no `recover_at` reproduces the old whole-round semantics (the
    /// shim answers no requests, sends no heartbeats and serves none of
    /// its own alerts); any other window crashes the shim mid-round and
    /// optionally recovers it, at which point it replays its intent
    /// journal and rejoins heartbeating.
    pub crashed: Vec<CrashWindow>,
    /// Named network-partition schedule in virtual time: while a window
    /// is active, traffic crossing its cut is silently swallowed. Both
    /// sides keep working — the minority side in degraded local mode —
    /// and reconcile when the window heals.
    pub partitions: Vec<PartitionWindow>,
    /// Ticks a journalled PREPARE stays valid without a COMMIT before the
    /// destination unilaterally aborts it. Must comfortably exceed one
    /// prepare → commit round trip or healthy transactions expire.
    pub prepare_lease: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            faults: ChannelFaults::reliable(),
            seed: 0x5EED,
            max_retry: 3,
            backoff: BackoffPolicy::default(),
            hello_window: 2,
            heartbeat_period: 8,
            liveness_deadline: 24,
            max_ticks: 4096,
            crashed: Vec::new(),
            partitions: Vec::new(),
            prepare_lease: 64,
        }
    }
}

impl FabricConfig {
    /// Adopt the cluster's configured channel fault model.
    pub fn from_sim(sim: &SimConfig, seed: u64) -> Self {
        let mut cfg = Self {
            faults: sim.channel.clone(),
            seed,
            ..Self::default()
        };
        // keep the hello window ahead of the worst base delay so a
        // healthy, slow channel is not mistaken for dead shims
        cfg.hello_window = cfg.hello_window.max(sim.channel.delay_max + 1);
        cfg
    }
}

/// Which phase of the two-phase commit a transaction is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnPhase {
    /// PREPARE sent; waiting for the destination's vote.
    Preparing,
    /// PREPARE-OK received and COMMIT sent; waiting for the final ACK.
    Committing,
}

/// A transaction awaiting its next reply at the source shim.
struct Outstanding {
    vm: VmId,
    from: HostId,
    dest: HostId,
    cost: f64,
    attempt: u32,
    deadline: u64,
    phase: TxnPhase,
    /// Absolute lease carried by the PREPARE (stable across resends).
    lease: u64,
}

/// Source-shim actor state for the fabric runtime.
struct FabricShim {
    st: ShimState,
    liveness: Liveness,
    region: Vec<RackId>,
    /// `BTreeMap`, not `HashMap`: these maps are drained/iterated when
    /// settling fates, so their order feeds report ordering (DET02).
    outstanding: BTreeMap<ReqId, Outstanding>,
    /// Given-up requests whose fate is unknown: a stale copy may still
    /// commit at the destination, so the VM must not be replanned. The
    /// entry's `deadline` becomes the patience cutoff for late verdicts.
    zombies: BTreeMap<ReqId, Outstanding>,
    /// Zombies whose patience expired with no verdict; resolved against
    /// ground truth when the simulator assembles the report.
    unresolved: Vec<Outstanding>,
    /// Planning rounds still allowed (first plan included).
    rounds_left: usize,
    started: bool,
    done: bool,
    /// ACKs received for the current batch.
    progressed: bool,
    /// A timeout give-up resolved to a late REJECT since the last plan:
    /// allows one replan even without progress (the degradation ladder's
    /// recovery step).
    gave_up: bool,
    degraded: bool,
    /// Planned at least once while an active partition cut part of the
    /// region off (degraded local handling).
    part_degraded: bool,
    /// Currently crashed (its schedule window is open).
    down: bool,
    /// Earliest tick at which a recovered shim may plan again — one
    /// heartbeat period after recovery, so its liveness view is fresh.
    resume_at: u64,
}

/// Run one management round entirely over the simulated shim channel:
/// REQUEST/ACK/REJECT with deadlines, backoff, idempotent retransmission,
/// heartbeat liveness, and graceful degradation around crashed shims.
///
/// Single-threaded and deterministic in virtual time; with
/// [`ChannelFaults::reliable`] and no crashes it produces the same plan
/// as [`distributed_round_obs`] with `max_retry = cfg.max_retry`.
#[cfg(feature = "legacy")]
#[deprecated(
    since = "0.1.0",
    note = "use `FabricRuntime` via the `Runtime` trait, or `fabric_round_obs`"
)]
pub fn fabric_round(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    cfg: &FabricConfig,
) -> DistributedReport {
    fabric_round_obs(
        cluster,
        metric,
        alerts,
        alert_values,
        cfg,
        &mut sheriff_obs::NullSink,
    )
}

/// The fabric round with an [`EventSink`] observing the message exchange:
/// every REQUEST/ACK/REJECT, timeout, retransmission, absorbed duplicate,
/// degradation step, and crashed shim becomes a structured event, and the
/// channel's [`NetStats`](crate::channel::NetStats) land in counters
/// (`net.sent`, `net.dropped`, ...). The runtime is single-threaded in
/// virtual time, so the event stream is deterministic for a fixed seed.
pub fn fabric_round_obs<S: EventSink + ?Sized>(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    cfg: &FabricConfig,
    sink: &mut S,
) -> DistributedReport {
    // single-shot compatibility path: fresh failover state has no
    // heartbeat history, so no takeover or fencing can fire and the
    // round reproduces the pre-failover fabric byte for byte
    let mut failover = RegionFailover::new(cfg.heartbeat_period.max(1), cfg.liveness_deadline);
    fabric_round_failover_obs(
        cluster,
        metric,
        alerts,
        alert_values,
        cfg,
        &mut failover,
        sink,
    )
}

/// The fabric round with persistent partition-tolerance state threaded
/// through: the adaptive failure detector accrues heartbeat silence
/// across rounds, a shim it declares Dead has its racks handed to a
/// deterministic successor under a bumped epoch, and 2PC messages
/// carrying a superseded epoch are fenced with a `StaleEpoch` reject
/// that teaches the zombie the current term. Partition windows from
/// `cfg.partitions` cut the simulated network; shims plan around active
/// cuts in degraded local mode and reconcile parked work when a window
/// heals. [`fabric_round_obs`] is this with throwaway state.
#[allow(clippy::too_many_arguments)]
pub fn fabric_round_failover_obs<S: EventSink + ?Sized>(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    cfg: &FabricConfig,
    failover: &mut RegionFailover,
    sink: &mut S,
) -> DistributedReport {
    let mut racks: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
    racks.sort_unstable();
    racks.dedup();
    // a window with crash_at == 0 and no recovery is the old whole-round
    // crash: the rack is excluded from the round entirely. Every other
    // window is a mid-round transition handled inside the tick loop.
    let whole_round: BTreeSet<RackId> = cfg
        .crashed
        .iter()
        .filter(|w| w.crash_at == 0 && w.recover_at.is_none())
        .map(|w| w.rack)
        .collect();
    let schedule: Vec<CrashWindow> = cfg
        .crashed
        .iter()
        .copied()
        .filter(|w| !(w.crash_at == 0 && w.recover_at.is_none()))
        .collect();
    let crashed_alerted_racks: Vec<RackId> = racks
        .iter()
        .copied()
        .filter(|r| whole_round.contains(r))
        .collect();
    for &r in &crashed_alerted_racks {
        emit(sink, || Event::ShimCrashed {
            rack: r.index() as u64,
        });
    }
    racks.retain(|r| !whole_round.contains(r));
    let mut report = DistributedReport {
        crashed_shims: crashed_alerted_racks.len(),
        ..DistributedReport::default()
    };
    // detector baseline: every rack is expected to beacon from the
    // round's start, so a shim that is down from tick 0 accrues silence
    for i in 0..cluster.dcn.rack_count() {
        failover
            .detector
            .track(RackId::from_index(i), failover.clock);
    }
    // regional takeover: an alerted rack whose shim the detector has
    // already declared Dead hands its alerts to a deterministic
    // successor — the lowest-index live alerted rack in its region,
    // else the lowest-index live alerted rack anywhere. The first
    // handover bumps the rack's epoch so the deposed shim's 2PC traffic
    // can be fenced when it returns.
    let mut adopted: BTreeMap<RackId, Vec<RackId>> = BTreeMap::new();
    for &r in &crashed_alerted_racks {
        if failover.detector.health(r) != ShimHealth::Dead {
            continue;
        }
        let region = cluster.dcn.neighbor_racks(r, cluster.sim.region_hops);
        let succ = region
            .iter()
            .copied()
            .filter(|s| racks.contains(s))
            .min()
            .or_else(|| racks.first().copied());
        if let Some(s) = succ {
            let continued = failover.taken_over(r) && failover.manager_of(r) == s;
            let epoch = failover.take_over(r, s);
            if !continued {
                emit(sink, || Event::RegionTakenOver {
                    rack: r.index() as u64,
                    by: s.index() as u64,
                    epoch,
                });
                sink.counter("region.takeovers", 1);
                report.takeovers += 1;
            }
            adopted.entry(s).or_default().push(r);
        }
    }
    if racks.is_empty() {
        return report;
    }
    report.shims = racks.len();

    let rack_count = cluster.dcn.rack_count();
    let sim = cluster.sim.clone();
    let mut net = SimNet::new(cfg.faults.clone(), cfg.seed);
    net.set_partitions(cfg.partitions.clone());
    // racks currently down, rebuilt incrementally from the schedule — the
    // per-tick membership test the beacon loops use
    let mut down: BTreeSet<RackId> = whole_round.clone();
    for &r in &whole_round {
        net.set_down(r);
    }
    let mut endpoints: Vec<ShimEndpoint> = (0..rack_count)
        .map(|r| ShimEndpoint::new(RackId::from_index(r)))
        .collect();

    // victim selection on the initial placement (Alg. 1), as in the
    // threaded runtime
    let mut shims: Vec<FabricShim> = racks
        .iter()
        .map(|&rack| {
            let (mut pending, mut candidates) = select_victims(
                &cluster.placement,
                &cluster.dcn.inventory,
                &sim,
                rack,
                alerts,
                alert_values,
            );
            // a takeover successor also serves the alerts of the racks
            // it adopted, with victims selected the same way
            for &ar in adopted.get(&rack).map(Vec::as_slice).unwrap_or_default() {
                let (more, more_cand) = select_victims(
                    &cluster.placement,
                    &cluster.dcn.inventory,
                    &sim,
                    ar,
                    alerts,
                    alert_values,
                );
                pending.extend(more);
                candidates += more_cand;
            }
            emit(sink, || Event::VictimsSelected {
                rack: rack.index() as u64,
                candidates: candidates as u64,
                selected: pending.len() as u64,
            });
            let region = cluster.dcn.neighbor_racks(rack, sim.region_hops);
            FabricShim {
                st: ShimState {
                    rack,
                    active: !pending.is_empty(),
                    pending,
                    slots: Vec::new(),
                    excluded: Vec::new(),
                    plan: MigrationPlan::default(),
                    retries: 0,
                    seq: 0,
                },
                liveness: Liveness::new(cfg.liveness_deadline),
                region,
                outstanding: BTreeMap::new(),
                zombies: BTreeMap::new(),
                unresolved: Vec::new(),
                rounds_left: cfg.max_retry + 1,
                started: false,
                done: false,
                progressed: false,
                gave_up: false,
                degraded: false,
                part_degraded: false,
                down: false,
                resume_at: 0,
            }
        })
        .collect();
    // shims with nothing to do are immediately done
    for s in &mut shims {
        if !s.st.active {
            s.done = true;
        }
    }

    let source_index: HashMap<RackId, usize> = shims
        .iter()
        .enumerate()
        .map(|(i, s)| (s.st.rack, i))
        .collect();
    let all_racks: Vec<RackId> = (0..rack_count).map(RackId::from_index).collect();
    // longest possible request + reply round trip: base delay plus the
    // reorder fault's extra hold-back (up to 3 ticks) each way, with slack
    let patience = 2 * (cfg.faults.delay_max + 3) + 2;

    let mut t: u64 = 0;
    while t <= cfg.max_ticks {
        // crash/recover transitions scheduled for this tick. A crashing
        // source shim loses its volatile negotiation state (outstanding
        // requests become unresolved — their fate settles against ground
        // truth); its durable intent journal survives and is replayed on
        // recovery.
        for w in &schedule {
            if w.crash_at == t {
                net.set_down(w.rack);
                down.insert(w.rack);
                emit(sink, || Event::ShimCrashed {
                    rack: w.rack.index() as u64,
                });
                if let Some(&i) = source_index.get(&w.rack) {
                    let shim = &mut shims[i];
                    shim.down = true;
                    shim.started = false;
                    let lost: Vec<Outstanding> = std::mem::take(&mut shim.outstanding)
                        .into_values()
                        .chain(std::mem::take(&mut shim.zombies).into_values())
                        .collect();
                    shim.unresolved.extend(lost);
                }
            }
            if w.recover_at == Some(t) {
                net.set_up(w.rack);
                down.remove(&w.rack);
                emit(sink, || Event::ShimRecovered {
                    rack: w.rack.index() as u64,
                });
                report.recoveries += 1;
                // journal replay: re-ACK committed transfers, abort
                // orphaned prepares whose lease lapsed while down and
                // prepares journalled under a since-superseded epoch —
                // the restore path can never resurrect old-epoch intents
                let rep = endpoints[w.rack.index()].recover_fenced(
                    &mut cluster.placement,
                    &cluster.deps,
                    t,
                    failover.epochs(),
                );
                sink.counter("journal.replayed", rep.replayed as u64);
                sink.counter("journal.reacked", rep.reacks.len() as u64);
                sink.counter("journal.forwarded", rep.forwarded as u64);
                for req_id in rep.reacks {
                    let epoch = failover.view_of(w.rack);
                    net.send(t, w.rack, req_id.source(), ShimMsg::Ack { req_id, epoch });
                }
                for (req, vm) in rep.lease_aborts.iter().chain(rep.epoch_aborts.iter()) {
                    let (req, vm) = (*req, *vm);
                    report.txn_aborted += 1;
                    emit(sink, || Event::TxnAborted {
                        req: req.0,
                        vm: vm.index() as u64,
                    });
                    sink.counter("txn.aborted", 1);
                }
                if let Some(&i) = source_index.get(&w.rack) {
                    let shim = &mut shims[i];
                    shim.down = false;
                    // rejoin heartbeating first; plan once the liveness
                    // view has had a full beacon period to repopulate
                    shim.resume_at = t + cfg.heartbeat_period + 1;
                }
            }
        }

        // partition heals scheduled for this tick: reconcile parked
        // work. A pending VM whose rack is managed by another shim was
        // (or will be) handled by that manager — replanning it here
        // would double-manage, so it is dropped and counted as a
        // reconciliation conflict. Shims the cut starved into parking
        // with work left are woken for a post-heal replan.
        for (idx, p) in cfg.partitions.iter().enumerate() {
            if p.heal_at != Some(t) {
                continue;
            }
            emit(sink, || Event::PartitionHealed {
                partition: idx as u64,
                racks: p.members.len() as u64,
            });
            sink.counter("net.healed", 1);
            for shim in &mut shims {
                if !shim.st.pending.is_empty() {
                    let before = shim.st.pending.len();
                    let rack = shim.st.rack;
                    shim.st
                        .pending
                        .retain(|&vm| failover.manager_of(cluster.placement.rack_of(vm)) == rack);
                    report.reconciliations += before - shim.st.pending.len();
                }
                if shim.done && !shim.down && !shim.st.pending.is_empty() {
                    shim.done = false;
                    shim.gave_up = true;
                    shim.rounds_left = shim.rounds_left.max(1);
                }
            }
        }

        // liveness beacons: every live rack announces itself to every
        // source shim at t = 0 and on each heartbeat period. The failure
        // detector watches the *emission* (simulator ground truth): a
        // partitioned-but-alive shim keeps emitting, so a cut never
        // looks like a crash and takeover stays crash-only.
        if t == 0 {
            for &r in &all_racks {
                if down.contains(&r) {
                    continue;
                }
                if failover.detector.observe_emission(r, failover.clock + t) == ShimHealth::Dead {
                    // a shim the detector wrote off is beaconing again:
                    // management reverts to it, while its stale epoch
                    // view keeps its old 2PC traffic fenced until it
                    // adopts the bump
                    failover.reinstate(r);
                }
                let epoch = failover.view_of(r);
                for &s in &racks {
                    net.send(t, r, s, ShimMsg::Hello { rack: r, epoch });
                }
            }
        } else if cfg.heartbeat_period > 0 && t.is_multiple_of(cfg.heartbeat_period) {
            for &r in &all_racks {
                if down.contains(&r) {
                    continue;
                }
                if failover.detector.observe_emission(r, failover.clock + t) == ShimHealth::Dead {
                    failover.reinstate(r);
                }
                let epoch = failover.view_of(r);
                for &s in &racks {
                    net.send(
                        t,
                        r,
                        s,
                        ShimMsg::Heartbeat {
                            rack: r,
                            tick: t,
                            epoch,
                        },
                    );
                }
            }
        }

        // adaptive failure detection: silence beyond the thresholds
        // walks a shim Alive → Suspect → Dead. A Dead shim that still
        // holds unplanned work mid-round hands it to the lowest-index
        // live shim under a bumped epoch; its in-flight 2PC stays with
        // the zombie/lease machinery, which already settles it safely.
        for (rack, _old, new) in failover.detector.tick(failover.clock + t) {
            match new {
                ShimHealth::Suspect => {
                    emit(sink, || Event::ShimSuspected {
                        rack: rack.index() as u64,
                    });
                    sink.counter("detector.suspected", 1);
                }
                ShimHealth::Dead => {
                    emit(sink, || Event::ShimDeclaredDead {
                        rack: rack.index() as u64,
                    });
                    sink.counter("detector.declared_dead", 1);
                    let Some(&i) = source_index.get(&rack) else {
                        continue;
                    };
                    if !shims
                        .get(i)
                        .is_some_and(|s| s.down && !s.st.pending.is_empty())
                    {
                        continue;
                    }
                    let succ = shims
                        .iter()
                        .enumerate()
                        .filter(|&(j, s)| j != i && !s.down)
                        .map(|(j, s)| (s.st.rack, j))
                        .min();
                    let Some((succ_rack, j)) = succ else {
                        continue;
                    };
                    let continued =
                        failover.taken_over(rack) && failover.manager_of(rack) == succ_rack;
                    let epoch = failover.take_over(rack, succ_rack);
                    if !continued {
                        emit(sink, || Event::RegionTakenOver {
                            rack: rack.index() as u64,
                            by: succ_rack.index() as u64,
                            epoch,
                        });
                        sink.counter("region.takeovers", 1);
                        report.takeovers += 1;
                    }
                    let moved = match shims.get_mut(i) {
                        Some(s) => std::mem::take(&mut s.st.pending),
                        None => Vec::new(),
                    };
                    if let Some(s) = shims.get_mut(j) {
                        s.st.pending.extend(moved);
                        s.done = false;
                        s.gave_up = true;
                        s.rounds_left = s.rounds_left.max(1);
                    }
                }
                ShimHealth::Alive => {}
            }
        }

        // deliveries: endpoints answer requests, sources absorb replies
        for (from, to, msg) in net.poll(t) {
            match msg {
                ShimMsg::Hello { rack, .. } | ShimMsg::Heartbeat { rack, .. } => {
                    if let Some(&i) = source_index.get(&to) {
                        shims[i].liveness.observe(rack, t);
                    }
                }
                ShimMsg::Request {
                    req_id, vm, dest, ..
                } => {
                    let hits_before = endpoints[to.index()].dedup_hits();
                    let verdict = endpoints[to.index()].handle_request(
                        &mut cluster.placement,
                        &cluster.deps,
                        req_id,
                        vm,
                        dest,
                    );
                    if endpoints[to.index()].dedup_hits() > hits_before {
                        emit(sink, || Event::DuplicateAbsorbed { req: req_id.0 });
                    }
                    let my_epoch = failover.view_of(to);
                    net.send(
                        t,
                        to,
                        from,
                        ShimEndpoint::reply_msg(req_id, verdict, my_epoch),
                    );
                }
                ShimMsg::Prepare {
                    req_id,
                    vm,
                    dest,
                    lease,
                    epoch,
                } => {
                    // epoch fence: a PREPARE from a deposed manager's
                    // term mutates nothing — the sender learns the
                    // current epoch from the reject and must replan
                    if let Some(current) = failover.fence(from, epoch) {
                        report.fenced += 1;
                        emit(sink, || Event::StaleEpochRejected {
                            req: req_id.0,
                            rack: to.index() as u64,
                            stale: epoch,
                            current,
                        });
                        sink.counter("txn.fenced", 1);
                        net.send(
                            t,
                            to,
                            from,
                            ShimMsg::Reject {
                                req_id,
                                reason: RejectReason::StaleEpoch,
                                epoch: current,
                            },
                        );
                        continue;
                    }
                    let ep = &mut endpoints[to.index()];
                    let hits_before = ep.dedup_hits();
                    let journalled_before = ep.journal().len();
                    let reply = ep.handle_prepare(
                        &mut cluster.placement,
                        &cluster.deps,
                        req_id,
                        vm,
                        dest,
                        lease,
                        epoch,
                    );
                    if ep.journal().len() > journalled_before {
                        report.txn_prepared += 1;
                        emit(sink, || Event::TxnPrepared {
                            req: req_id.0,
                            vm: vm.index() as u64,
                            dest_host: dest.index() as u64,
                        });
                        sink.counter("txn.prepared", 1);
                    }
                    if ep.dedup_hits() > hits_before {
                        emit(sink, || Event::DuplicateAbsorbed { req: req_id.0 });
                    }
                    let my_epoch = failover.view_of(to);
                    net.send(
                        t,
                        to,
                        from,
                        ShimEndpoint::reply_2pc_msg(req_id, reply, my_epoch),
                    );
                }
                ShimMsg::PrepareOk { req_id, .. } => {
                    if let Some(&i) = source_index.get(&to) {
                        let shim = &mut shims[i];
                        if let Some(o) = shim.outstanding.get_mut(&req_id) {
                            if o.phase == TxnPhase::Preparing {
                                // vote is in: the transaction will commit,
                                // so the batch made progress
                                o.phase = TxnPhase::Committing;
                                o.attempt = 0;
                                o.deadline = t + cfg.backoff.delay(0, req_id);
                                shim.progressed = true;
                                let dest_rack = cluster.placement.rack_of_host(o.dest);
                                let epoch = failover.view_of(shim.st.rack);
                                net.send(
                                    t,
                                    shim.st.rack,
                                    dest_rack,
                                    ShimMsg::Commit { req_id, epoch },
                                );
                            }
                            // duplicate vote for a committing txn: ignore
                        } else if let Some(mut o) = shim.zombies.remove(&req_id) {
                            // late vote resolves the zombie: the
                            // destination is alive and holds the prepare,
                            // so drive the commit home instead of letting
                            // the lease strand it
                            let dest_rack = cluster.placement.rack_of_host(o.dest);
                            shim.liveness.observe(dest_rack, t);
                            o.phase = TxnPhase::Committing;
                            o.attempt = 0;
                            o.deadline = t + cfg.backoff.delay(0, req_id);
                            shim.outstanding.insert(req_id, o);
                            shim.progressed = true;
                            let epoch = failover.view_of(shim.st.rack);
                            net.send(
                                t,
                                shim.st.rack,
                                dest_rack,
                                ShimMsg::Commit { req_id, epoch },
                            );
                        }
                    }
                }
                ShimMsg::Commit { req_id, epoch } => {
                    if let Some(current) = failover.fence(from, epoch) {
                        report.fenced += 1;
                        emit(sink, || Event::StaleEpochRejected {
                            req: req_id.0,
                            rack: to.index() as u64,
                            stale: epoch,
                            current,
                        });
                        sink.counter("txn.fenced", 1);
                        net.send(
                            t,
                            to,
                            from,
                            ShimMsg::Reject {
                                req_id,
                                reason: RejectReason::StaleEpoch,
                                epoch: current,
                            },
                        );
                        continue;
                    }
                    let ep = &mut endpoints[to.index()];
                    let was_prepared = ep.journal().state(req_id) == Some(TxnState::Prepared);
                    let reply = ep.handle_commit(req_id, epoch);
                    if was_prepared && reply == TwoPhaseReply::Ack {
                        report.txn_committed += 1;
                        if let Some(rec) = ep.journal().get(req_id) {
                            let vm = rec.vm;
                            emit(sink, || Event::TxnCommitted {
                                req: req_id.0,
                                vm: vm.index() as u64,
                            });
                        }
                        sink.counter("txn.committed", 1);
                    }
                    let my_epoch = failover.view_of(to);
                    net.send(
                        t,
                        to,
                        from,
                        ShimEndpoint::reply_2pc_msg(req_id, reply, my_epoch),
                    );
                }
                ShimMsg::Abort { req_id, epoch } => {
                    // a stale-epoch ABORT is fenced like any other 2PC
                    // mutation; the prepare it targeted drains via its
                    // lease instead
                    if let Some(current) = failover.fence(from, epoch) {
                        report.fenced += 1;
                        emit(sink, || Event::StaleEpochRejected {
                            req: req_id.0,
                            rack: to.index() as u64,
                            stale: epoch,
                            current,
                        });
                        sink.counter("txn.fenced", 1);
                        net.send(
                            t,
                            to,
                            from,
                            ShimMsg::Reject {
                                req_id,
                                reason: RejectReason::StaleEpoch,
                                epoch: current,
                            },
                        );
                        continue;
                    }
                    if let Some((vm, _)) = endpoints[to.index()].handle_abort(
                        &mut cluster.placement,
                        &cluster.deps,
                        req_id,
                    ) {
                        report.txn_aborted += 1;
                        emit(sink, || Event::TxnAborted {
                            req: req_id.0,
                            vm: vm.index() as u64,
                        });
                        sink.counter("txn.aborted", 1);
                    }
                    // fire-and-forget: the source already walked away
                }
                ShimMsg::Ack { req_id, .. } => {
                    if let Some(&i) = source_index.get(&to) {
                        let shim = &mut shims[i];
                        // a late ACK for a given-up request still means
                        // the destination committed: record it. Only the
                        // zombie case counts as batch progress — for a
                        // live transaction the PREPARE-OK already did.
                        let was_zombie = shim.zombies.contains_key(&req_id);
                        if let Some(o) = shim
                            .outstanding
                            .remove(&req_id)
                            .or_else(|| shim.zombies.remove(&req_id))
                        {
                            emit(sink, || Event::AckReceived {
                                req: req_id.0,
                                vm: o.vm.index() as u64,
                            });
                            emit(sink, || Event::MigrationCommitted {
                                vm: o.vm.index() as u64,
                                from_host: o.from.index() as u64,
                                to_host: o.dest.index() as u64,
                                cost: o.cost,
                            });
                            sink.counter("migrations.committed", 1);
                            shim.st.plan.moves.push(Move {
                                vm: o.vm,
                                from: o.from,
                                to: o.dest,
                                cost: o.cost,
                            });
                            shim.st.plan.total_cost += o.cost;
                            if was_zombie {
                                shim.progressed = true;
                            }
                        }
                        // duplicate ACK: already resolved, ignore
                    }
                }
                ShimMsg::Reject {
                    req_id,
                    reason,
                    epoch,
                } => {
                    if let Some(&i) = source_index.get(&to) {
                        if reason == RejectReason::StaleEpoch {
                            // the fencing rack told us our term moved on
                            // (a neighbor took over while we were away):
                            // adopt it so the replan goes out under the
                            // current epoch
                            failover.adopt(to, epoch);
                        }
                        let shim = &mut shims[i];
                        if let Some(o) = shim.outstanding.remove(&req_id) {
                            emit(sink, || Event::RejectReceived {
                                req: req_id.0,
                                vm: o.vm.index() as u64,
                                reason: reject_kind(reason),
                            });
                            sink.counter("migrations.rejected", 1);
                            shim.st.plan.rejected += 1;
                            shim.st.retries += 1;
                            if reason == RejectReason::StaleEpoch {
                                // the pairing was fine — only the term
                                // was stale; replan without excluding it
                                shim.gave_up = true;
                            } else {
                                shim.st.excluded.push((o.vm, o.dest));
                            }
                            shim.st.pending.push(o.vm);
                        } else if let Some(o) = shim.zombies.remove(&req_id) {
                            // late REJECT resolves the zombie: the VM
                            // definitively did not move, so it is safe to
                            // replan it elsewhere
                            emit(sink, || Event::RejectReceived {
                                req: req_id.0,
                                vm: o.vm.index() as u64,
                                reason: reject_kind(reason),
                            });
                            sink.counter("migrations.rejected", 1);
                            shim.st.plan.rejected += 1;
                            shim.st.retries += 1;
                            shim.st.pending.push(o.vm);
                            shim.gave_up = true;
                        }
                    }
                }
            }
        }

        // lease expiry: a live destination unilaterally aborts prepares
        // whose COMMIT never arrived (a commit delivered this same tick
        // wins — deliveries were processed above). Crashed endpoints
        // expire theirs during journal replay on recovery instead.
        for (r, endpoint) in endpoints.iter_mut().enumerate() {
            let rack = RackId::from_index(r);
            if down.contains(&rack) {
                continue;
            }
            for (req, vm) in endpoint.expire_leases(&mut cluster.placement, &cluster.deps, t) {
                report.txn_aborted += 1;
                emit(sink, || Event::TxnAborted {
                    req: req.0,
                    vm: vm.index() as u64,
                });
                sink.counter("txn.aborted", 1);
            }
        }

        // source-shim actions, in rack order for determinism
        for shim in &mut shims {
            if shim.done || shim.down {
                continue;
            }
            if !shim.started {
                if t >= cfg.hello_window && t >= shim.resume_at {
                    if shim.rounds_left > 0 {
                        shim.started = true;
                        fabric_plan_and_send(
                            shim,
                            cluster,
                            metric,
                            &sim,
                            &mut net,
                            t,
                            cfg,
                            failover,
                            &mut report,
                            sink,
                        );
                    } else if shim.zombies.is_empty() {
                        shim.done = true;
                    } else {
                        // out of planning rounds but still owed verdicts
                        shim.started = true;
                    }
                }
                continue;
            }

            // expire deadlines: retransmit with backoff, then give up and
            // presume the destination dead
            let expired: Vec<ReqId> = shim
                .outstanding
                .iter()
                .filter(|(_, o)| o.deadline <= t)
                .map(|(&id, _)| id)
                .collect();
            for req_id in expired {
                report.timeouts += 1;
                let o = shim.outstanding.get_mut(&req_id).expect("collected above");
                emit(sink, || Event::RequestTimeout {
                    req: req_id.0,
                    attempt: o.attempt as u64 + 1,
                });
                sink.counter("net.timeouts", 1);
                if o.attempt + 1 < cfg.backoff.max_attempts {
                    o.attempt += 1;
                    o.deadline = t + cfg.backoff.delay(o.attempt, req_id);
                    report.resends += 1;
                    emit(sink, || Event::RequestResent {
                        req: req_id.0,
                        attempt: o.attempt as u64 + 1,
                    });
                    sink.counter("net.resends", 1);
                    let my_epoch = failover.view_of(shim.st.rack);
                    let msg = match o.phase {
                        TxnPhase::Preparing => ShimMsg::Prepare {
                            req_id,
                            vm: o.vm,
                            dest: o.dest,
                            lease: o.lease,
                            epoch: my_epoch,
                        },
                        TxnPhase::Committing => ShimMsg::Commit {
                            req_id,
                            epoch: my_epoch,
                        },
                    };
                    let dest_rack = cluster.placement.rack_of_host(o.dest);
                    net.send(t, shim.st.rack, dest_rack, msg);
                } else {
                    // give up: presume the destination dead — but a stale
                    // copy of the request may still commit there, so the
                    // VM's fate is unknown. Park it as a zombie and keep
                    // listening for a late verdict within the patience
                    // window; never replan a VM of unknown fate.
                    let mut o = shim.outstanding.remove(&req_id).expect("collected above");
                    let dest_rack = cluster.placement.rack_of_host(o.dest);
                    shim.liveness.presume_dead(dest_rack);
                    if !shim.degraded {
                        emit(sink, || Event::ShimDegraded {
                            rack: shim.st.rack.index() as u64,
                        });
                    }
                    shim.degraded = true;
                    shim.st.excluded.push((o.vm, o.dest));
                    o.deadline = t + patience;
                    shim.zombies.insert(req_id, o);
                }
            }

            // zombies past their patience window stay unresolved; the
            // report assembly settles them against ground truth. A
            // best-effort ABORT lets the destination release a prepare
            // early instead of waiting out its lease.
            let expired: Vec<ReqId> = shim
                .zombies
                .iter()
                .filter(|(_, o)| o.deadline <= t)
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                let o = shim.zombies.remove(&id).expect("collected above");
                let dest_rack = cluster.placement.rack_of_host(o.dest);
                let epoch = failover.view_of(shim.st.rack);
                net.send(
                    t,
                    shim.st.rack,
                    dest_rack,
                    ShimMsg::Abort { req_id: id, epoch },
                );
                shim.unresolved.push(o);
            }

            // batch resolved once every PREPARE has its vote: replan while
            // the commits drain (their placement effect is already
            // visible), or finish when truly idle
            let preparing = shim
                .outstanding
                .values()
                .any(|o| o.phase == TxnPhase::Preparing);
            if !preparing {
                let replan = !shim.st.pending.is_empty()
                    && shim.rounds_left > 0
                    && (shim.progressed || shim.gave_up);
                if replan {
                    fabric_plan_and_send(
                        shim,
                        cluster,
                        metric,
                        &sim,
                        &mut net,
                        t,
                        cfg,
                        failover,
                        &mut report,
                        sink,
                    );
                } else if shim.outstanding.is_empty() && shim.zombies.is_empty() {
                    shim.done = true;
                }
            }
        }

        // the round ends when every source shim settled; a crashed shim
        // only holds the round open while a recovery is still scheduled,
        // and a scheduled heal holds it open while any parked shim still
        // has work the heal would wake it for
        let heal_pending = cfg
            .partitions
            .iter()
            .any(|p| p.start_at <= t && p.heal_at.is_some_and(|h| h > t));
        let all_settled = shims.iter().all(|s| {
            s.done
                || (s.down
                    && !schedule
                        .iter()
                        .any(|w| w.rack == s.st.rack && w.recover_at.is_some_and(|r| r > t)))
        }) && !(heal_pending
            && shims
                .iter()
                .any(|s| s.done && !s.down && !s.st.pending.is_empty()));
        if all_settled {
            break;
        }
        t += 1;
    }

    // no transaction outlives the round: sweep every journal and abort
    // whatever is still `Prepared` (sources that walked away, schedules
    // that never recovered, the tick cap). Must happen before the
    // ground-truth settlement below so a half-done prepare can't be
    // mistaken for a committed move.
    for ep in &mut endpoints {
        for (req, vm) in ep.expire_leases(&mut cluster.placement, &cluster.deps, u64::MAX) {
            report.txn_aborted += 1;
            emit(sink, || Event::TxnAborted {
                req: req.0,
                vm: vm.index() as u64,
            });
            sink.counter("txn.aborted", 1);
        }
    }

    // no VM may be managed by two shims at once: across takeovers,
    // partitions, and heals the pending / in-flight / unknown-fate sets
    // of different shims must stay disjoint (audited before settlement
    // collapses them against ground truth)
    let manager_audit = audit_managers(shims.iter().map(|s| {
        (
            s.st.rack,
            s.st.pending
                .iter()
                .copied()
                .chain(s.outstanding.values().map(|o| o.vm))
                .chain(s.zombies.values().map(|o| o.vm))
                .chain(s.unresolved.iter().map(|o| o.vm))
                .collect::<Vec<_>>(),
        )
    }));

    // settle unknown fates against ground truth: the simulator (unlike
    // the shims) can see whether an unacknowledged request actually
    // committed at its destination. Requests cut off by the tick cap are
    // settled the same way.
    for shim in &mut shims {
        let leftovers: Vec<Outstanding> = shim
            .unresolved
            .drain(..)
            .chain(std::mem::take(&mut shim.outstanding).into_values())
            .chain(std::mem::take(&mut shim.zombies).into_values())
            .collect();
        for o in leftovers {
            if cluster.placement.host_of(o.vm) == o.dest {
                emit(sink, || Event::MigrationCommitted {
                    vm: o.vm.index() as u64,
                    from_host: o.from.index() as u64,
                    to_host: o.dest.index() as u64,
                    cost: o.cost,
                });
                sink.counter("migrations.committed", 1);
                shim.st.plan.moves.push(Move {
                    vm: o.vm,
                    from: o.from,
                    to: o.dest,
                    cost: o.cost,
                });
                shim.st.plan.total_cost += o.cost;
            } else {
                shim.st.pending.push(o.vm);
            }
        }
    }

    report.ticks = t.min(cfg.max_ticks);
    // the detector's clock spans rounds: silence keeps accruing across
    // round boundaries, so a crashed shim is eventually declared Dead
    // even when every individual round is short
    failover.clock += report.ticks + 1;
    report.drops = net.stats.dropped;
    report.dedup_hits = endpoints.iter().map(|e| e.dedup_hits()).sum();
    sink.counter("net.sent", net.stats.sent as u64);
    sink.counter("net.delivered", net.stats.delivered as u64);
    sink.counter("net.dropped", net.stats.dropped as u64);
    sink.counter("net.duplicated", net.stats.duplicated as u64);
    sink.counter("net.reordered", net.stats.reordered as u64);
    sink.counter("net.blackholed", net.stats.blackholed as u64);
    sink.counter("net.partitioned", net.stats.partitioned as u64);
    sink.counter("net.dedup_hits", report.dedup_hits as u64);
    for shim in shims {
        let mut plan = shim.st.plan;
        let mut pending = shim.st.pending;
        pending.sort_unstable();
        pending.dedup();
        plan.unplaced.extend(pending);
        report.plan.absorb(plan);
        report.retries += shim.st.retries;
        if shim.degraded {
            report.degraded_shims += 1;
        }
    }
    report.audit = audit_placement(&cluster.placement, &cluster.deps);
    report.audit.merge(manager_audit);
    report.audit.merge(audit_moves(
        &cluster.placement,
        report.plan.moves.iter().map(|m| (m.vm, m.to)),
    ));
    report.audit.merge(audit_journals(
        &cluster.placement,
        endpoints.iter().map(|e| e.journal()),
    ));
    report
}

/// One fabric planning round: rebuild the slot list from live racks
/// (degradation ladder step 1; the own rack is always kept — step 2),
/// run the matching, and send a REQUEST per assignment.
#[allow(clippy::too_many_arguments)]
fn fabric_plan_and_send<S: EventSink + ?Sized>(
    shim: &mut FabricShim,
    cluster: &Cluster,
    metric: &RackMetric,
    sim: &SimConfig,
    net: &mut SimNet,
    now: u64,
    cfg: &FabricConfig,
    failover: &RegionFailover,
    report: &mut DistributedReport,
    sink: &mut S,
) {
    shim.rounds_left -= 1;
    shim.progressed = false;
    shim.gave_up = false;

    let live_region: Vec<RackId> = shim
        .region
        .iter()
        .copied()
        .filter(|&r| shim.liveness.alive(r, now))
        .collect();
    // an active partition cuts part of the region off *right now*: plan
    // around it immediately (degraded local handling, own rack always
    // kept) instead of waiting for the liveness deadline to notice
    let reachable: Vec<RackId> = live_region
        .iter()
        .copied()
        .filter(|&r| !net.cut(now, shim.st.rack, r))
        .collect();
    // degraded-mode accounting keys off the ground-truth cut over the
    // whole region: liveness may have aged the far side out already (its
    // beacons stopped arriving the moment the cut opened), but the shim
    // is still planning around a partition, not a crash
    let cut_off = shim.region.iter().any(|&r| net.cut(now, shim.st.rack, r));
    if cut_off && !shim.part_degraded {
        shim.part_degraded = true;
        report.partition_degraded += 1;
        sink.counter("region.partition_degraded", 1);
    }
    if reachable.len() < shim.region.len() {
        if !shim.degraded {
            emit(sink, || Event::ShimDegraded {
                rack: shim.st.rack.index() as u64,
            });
        }
        shim.degraded = true;
    }
    shim.st.slots = region_slots(&cluster.dcn.inventory, &reachable, shim.st.rack);

    let pending = std::mem::take(&mut shim.st.pending);
    let (proposals, unassigned, space) = plan_proposals(
        &cluster.placement,
        &cluster.deps,
        metric,
        sim,
        &pending,
        &shim.st.slots,
        &shim.st.excluded,
    );
    shim.st.plan.search_space += space;
    shim.st.pending = unassigned;
    emit(sink, || Event::PlanComputed {
        rack: shim.st.rack.index() as u64,
        proposals: proposals.len() as u64,
        unassigned: shim.st.pending.len() as u64,
        search_space: space as u64,
    });

    for p in proposals {
        let req_id = ReqId::new(shim.st.rack, shim.st.seq);
        shim.st.seq += 1;
        emit(sink, || Event::RequestSent {
            req: req_id.0,
            vm: p.vm.index() as u64,
            dest_host: p.dest.index() as u64,
            attempt: 1,
        });
        let from = cluster.placement.host_of(p.vm);
        let dest_rack = cluster.placement.rack_of_host(p.dest);
        let lease = now + cfg.prepare_lease;
        shim.outstanding.insert(
            req_id,
            Outstanding {
                vm: p.vm,
                from,
                dest: p.dest,
                cost: p.cost,
                attempt: 0,
                deadline: now + cfg.backoff.delay(0, req_id),
                phase: TxnPhase::Preparing,
                lease,
            },
        );
        net.send(
            now,
            shim.st.rack,
            dest_rack,
            ShimMsg::Prepare {
                req_id,
                vm: p.vm,
                dest: p.dest,
                lease,
                epoch: failover.view_of(shim.st.rack),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::ClusterConfig;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use sheriff_obs::NullSink;

    fn cluster(seed: u64) -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(8));
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 3.0,
                seed,
                ..ClusterConfig::default()
            },
            dcn_sim::SimConfig::paper(),
        )
    }

    fn alert_values(c: &Cluster) -> Vec<f64> {
        c.placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect()
    }

    fn assert_capacity_ok(c: &Cluster) {
        for h in 0..c.placement.host_count() {
            let h = HostId::from_index(h);
            assert!(
                c.placement.used_capacity(h) <= c.placement.host_capacity(h) + 1e-9,
                "host {h} over capacity"
            );
        }
    }

    fn assert_deps_ok(c: &Cluster) {
        for vm in c.placement.vm_ids() {
            let host = c.placement.host_of(vm);
            for &other in c.placement.vms_on(host) {
                if other != vm {
                    assert!(
                        !c.deps.dependent(vm, other),
                        "dependent VMs {vm} and {other} co-located on {host}"
                    );
                }
            }
        }
    }

    #[test]
    fn concurrent_shims_preserve_capacity_invariants() {
        let mut c = cluster(21);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let report = distributed_round_obs(&mut c, &metric, &alerts, &vals, 3, &mut NullSink);
        assert!(report.shims > 1, "want true concurrency in this test");
        assert!(!report.plan.moves.is_empty());
        assert_capacity_ok(&c);
    }

    #[test]
    fn concurrent_shims_respect_dependency_conflicts() {
        let mut c = cluster(22);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let _ = distributed_round_obs(&mut c, &metric, &alerts, &vals, 3, &mut NullSink);
        assert_deps_ok(&c);
    }

    #[test]
    fn distributed_round_improves_balance() {
        let mut c = cluster(23);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let before = c.utilization_stddev();
        for t in 0..6 {
            let alerts = c.fraction_alerts(0.05, t);
            let vals = alert_values(&c);
            distributed_round_obs(&mut c, &metric, &alerts, &vals, 3, &mut NullSink);
        }
        let after = c.utilization_stddev();
        assert!(after < before, "std-dev {before} -> {after}");
    }

    #[test]
    fn moves_recorded_match_final_placement() {
        let mut c = cluster(24);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.05, 0);
        let vals = alert_values(&c);
        let report = distributed_round_obs(&mut c, &metric, &alerts, &vals, 3, &mut NullSink);
        // each VM's final host equals its last recorded move
        let mut last: std::collections::HashMap<VmId, HostId> = Default::default();
        for m in &report.plan.moves {
            last.insert(m.vm, m.to);
        }
        for (vm, to) in last {
            assert_eq!(c.placement.host_of(vm), to);
        }
        let sum: f64 = report.plan.moves.iter().map(|m| m.cost).sum();
        assert!((report.plan.total_cost - sum).abs() < 1e-9);
    }

    #[test]
    fn no_alerts_is_a_noop() {
        let mut c = cluster(25);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let before = c.utilization_stddev();
        let report = distributed_round_obs(&mut c, &metric, &[], &[], 3, &mut NullSink);
        assert_eq!(report.shims, 0);
        assert!(report.plan.moves.is_empty());
        assert_eq!(c.utilization_stddev(), before);
    }

    #[test]
    fn reliable_fabric_reproduces_threaded_plan_exactly() {
        let mut threaded = cluster(26);
        let mut fabric = cluster(26);
        let metric = RackMetric::build(&threaded.dcn, &threaded.sim);
        let alerts = threaded.fraction_alerts(0.10, 0);
        let vals = alert_values(&threaded);

        let cfg = FabricConfig::default();
        assert!(cfg.faults.is_reliable());
        let rt = distributed_round_obs(
            &mut threaded,
            &metric,
            &alerts,
            &vals,
            cfg.max_retry,
            &mut NullSink,
        );
        let rf = fabric_round_obs(&mut fabric, &metric, &alerts, &vals, &cfg, &mut NullSink);

        assert_eq!(rt.plan.moves.len(), rf.plan.moves.len());
        for (a, b) in rt.plan.moves.iter().zip(&rf.plan.moves) {
            assert_eq!((a.vm, a.from, a.to), (b.vm, b.from, b.to));
            assert!((a.cost - b.cost).abs() < 1e-12);
        }
        assert!((rt.plan.total_cost - rf.plan.total_cost).abs() < 1e-9);
        assert_eq!(rt.plan.rejected, rf.plan.rejected);
        assert_eq!(rt.plan.unplaced, rf.plan.unplaced);
        for vm in threaded.placement.vm_ids() {
            assert_eq!(threaded.placement.host_of(vm), fabric.placement.host_of(vm));
        }
        // a perfect channel exercises none of the robustness machinery
        assert_eq!(rf.drops, 0);
        assert_eq!(rf.timeouts, 0);
        assert_eq!(rf.resends, 0);
        assert_eq!(rf.dedup_hits, 0);
        assert_eq!(rf.degraded_shims, 0);
        assert!(!rt.plan.moves.is_empty(), "vacuous equivalence");
        // every move travelled the full PREPARE -> COMMIT -> ACK path and
        // nothing was left half-done
        assert_eq!(rf.txn_committed, rf.plan.moves.len());
        assert_eq!(rf.txn_aborted, 0);
        assert_eq!(rf.recoveries, 0);
        assert!(rf.audit.is_clean(), "{}", rf.audit);
        assert!(rt.audit.is_clean(), "{}", rt.audit);
    }

    #[test]
    fn lossy_fabric_with_crash_completes_and_degrades_gracefully() {
        let mut c = cluster(27);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        // crash the shim of the first alerted rack: its own alert goes
        // unserved and every other shim must route around it
        let crashed = alerts[0].rack;
        let cfg = FabricConfig {
            faults: ChannelFaults {
                drop: 0.10,
                ..ChannelFaults::lossy(0.10)
            },
            seed: 99,
            crashed: vec![CrashWindow::whole_round(crashed)],
            ..FabricConfig::default()
        };
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut NullSink);

        assert!(
            report.ticks < cfg.max_ticks,
            "round wedged until the tick cap"
        );
        assert!(
            !report.plan.moves.is_empty(),
            "lossy fabric still made progress"
        );
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
        assert_eq!(report.crashed_shims, 1);
        assert!(report.drops > 0, "10% loss must drop something");
        assert!(report.timeouts > 0, "drops must surface as timeouts");
        assert!(report.resends > 0, "timeouts must trigger retransmissions");
        assert!(
            report.degraded_shims > 0,
            "crash must degrade someone's region"
        );
    }

    #[test]
    fn duplicated_requests_never_double_apply() {
        let mut c = cluster(28);
        let initial = c.placement.clone();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let cfg = FabricConfig {
            faults: ChannelFaults {
                duplicate: 0.5,
                ..ChannelFaults::reliable()
            },
            seed: 5,
            ..FabricConfig::default()
        };
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut NullSink);
        assert!(
            report.dedup_hits > 0,
            "50% duplication must hit the dedup log"
        );
        // chaining the recorded moves from the initial placement lands
        // exactly on the final placement: every ACKed move applied once
        let mut loc: std::collections::HashMap<VmId, HostId> = c
            .placement
            .vm_ids()
            .map(|vm| (vm, initial.host_of(vm)))
            .collect();
        for m in &report.plan.moves {
            assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
            loc.insert(m.vm, m.to);
        }
        for vm in c.placement.vm_ids() {
            assert_eq!(loc[&vm], c.placement.host_of(vm));
        }
        assert_capacity_ok(&c);
    }

    #[test]
    fn fabric_with_all_shims_crashed_is_a_noop() {
        let mut c = cluster(29);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.05, 0);
        let vals = alert_values(&c);
        let before = c.utilization_stddev();
        let crashed: Vec<RackId> = {
            let mut r: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
            r.sort_unstable();
            r.dedup();
            r
        };
        let cfg = FabricConfig {
            crashed: crashed
                .iter()
                .copied()
                .map(CrashWindow::whole_round)
                .collect(),
            ..FabricConfig::default()
        };
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut NullSink);
        assert_eq!(report.shims, 0);
        assert_eq!(report.crashed_shims, crashed.len());
        assert!(report.plan.moves.is_empty());
        assert_eq!(c.utilization_stddev(), before);
    }

    #[test]
    fn mid_round_source_crash_recovers_and_audits_clean() {
        let mut c = cluster(31);
        let initial = c.placement.clone();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        // kill an alerted source shim between its PREPARE burst (applied
        // at t = 3 on the destinations) and the COMMIT phase, then
        // recover it: the orphaned prepares must lease-abort cleanly and
        // the recovered shim rejoins planning
        let victim = alerts[0].rack;
        let cfg = FabricConfig {
            crashed: vec![CrashWindow::during(victim, 4, 12)],
            ..FabricConfig::default()
        };
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut NullSink);

        assert!(report.ticks < cfg.max_ticks, "round wedged");
        assert_eq!(report.recoveries, 1);
        assert_eq!(
            report.crashed_shims, 0,
            "a recovering shim is not written off"
        );
        assert!(report.audit.is_clean(), "{}", report.audit);
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
        // exactly-once despite the crash: replaying the recorded moves
        // from the initial placement reproduces the final one
        let mut loc: std::collections::HashMap<VmId, HostId> = c
            .placement
            .vm_ids()
            .map(|vm| (vm, initial.host_of(vm)))
            .collect();
        for m in &report.plan.moves {
            assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
            loc.insert(m.vm, m.to);
        }
        for vm in c.placement.vm_ids() {
            assert_eq!(loc[&vm], c.placement.host_of(vm));
        }
    }

    #[test]
    fn mid_round_source_crash_settles_without_zombie_txns() {
        let mut c = cluster(32);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        // kill an alerted source shim right after its PREPAREs land and
        // never bring it back: its prepares must lease-abort or settle,
        // never stay half-done
        let victim = alerts[0].rack;
        let cfg = FabricConfig {
            crashed: vec![CrashWindow {
                rack: victim,
                crash_at: 4,
                recover_at: None,
            }],
            ..FabricConfig::default()
        };
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut NullSink);
        assert!(report.ticks < cfg.max_ticks, "round wedged");
        assert!(report.audit.is_clean(), "{}", report.audit);
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
    }

    #[test]
    fn sustained_crash_takeover_then_zombie_is_fenced() {
        let mut c = cluster(33);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let victim = alerts[0].rack;
        let mut failover = RegionFailover::default();
        let crash_cfg = FabricConfig {
            crashed: vec![CrashWindow::whole_round(victim)],
            ..FabricConfig::default()
        };
        // the victim stays dark across rounds: the detector walks it to
        // Dead and exactly one takeover (epoch bump) follows, however
        // many further rounds it stays dead
        let mut takeovers = 0;
        for _ in 0..6 {
            let vals = alert_values(&c);
            let r = fabric_round_failover_obs(
                &mut c,
                &metric,
                &alerts,
                &vals,
                &crash_cfg,
                &mut failover,
                &mut NullSink,
            );
            assert!(r.audit.is_clean(), "{}", r.audit);
            takeovers += r.takeovers;
        }
        assert_eq!(takeovers, 1, "one manager change, one epoch bump");
        assert_eq!(failover.epoch_of(victim), 1);
        assert!(failover.taken_over(victim));
        assert_eq!(
            failover.view_of(victim),
            0,
            "the deposed shim never heard the bump"
        );

        // the shim returns: its first PREPARE burst still carries epoch
        // 0, gets fenced, and the reject teaches it the current epoch
        let cfg = FabricConfig::default();
        let vals = alert_values(&c);
        let r = fabric_round_failover_obs(
            &mut c,
            &metric,
            &alerts,
            &vals,
            &cfg,
            &mut failover,
            &mut NullSink,
        );
        assert!(r.fenced > 0, "zombie PREPAREs must be fenced");
        assert_eq!(failover.view_of(victim), 1, "reject taught the epoch");
        assert!(
            !failover.taken_over(victim),
            "beaconing again reinstates management"
        );
        assert!(r.audit.is_clean(), "{}", r.audit);
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
    }

    #[test]
    fn crash_recover_with_concurrent_takeover_never_double_manages() {
        let mut c = cluster(36);
        let initial = c.placement.clone();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let victim = alerts[0].rack;
        // an aggressive detector (dead after ~6 ticks of silence)
        // declares the crashed shim Dead mid-round; its unplanned work
        // moves to a successor under a bumped epoch, and the shim then
        // recovers into the takeover — the regression this guards is two
        // shims both claiming the victim's VMs
        let mut failover = RegionFailover::new(2, 4);
        let cfg = FabricConfig {
            crashed: vec![CrashWindow::during(victim, 1, 20)],
            ..FabricConfig::default()
        };
        let report = fabric_round_failover_obs(
            &mut c,
            &metric,
            &alerts,
            &vals,
            &cfg,
            &mut failover,
            &mut NullSink,
        );
        assert!(report.ticks < cfg.max_ticks, "round wedged");
        assert_eq!(report.takeovers, 1, "mid-round takeover must fire");
        assert_eq!(failover.epoch_of(victim), 1);
        assert_eq!(report.recoveries, 1);
        // the manager audit (merged into report.audit) proves no VM was
        // pending/outstanding at two shims at once
        assert!(report.audit.is_clean(), "{}", report.audit);
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
        // exactly-once despite crash + takeover: replaying the recorded
        // moves from the initial placement reproduces the final one
        let mut loc: std::collections::HashMap<VmId, HostId> = c
            .placement
            .vm_ids()
            .map(|vm| (vm, initial.host_of(vm)))
            .collect();
        for m in &report.plan.moves {
            assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
            loc.insert(m.vm, m.to);
        }
        for vm in c.placement.vm_ids() {
            assert_eq!(loc[&vm], c.placement.host_of(vm));
        }
    }

    #[test]
    fn partition_degrades_minority_without_takeover_or_fencing() {
        let mut c = cluster(34);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let isolated = alerts[0].rack;
        let cfg = FabricConfig {
            partitions: vec![PartitionWindow::new(vec![isolated], 0, Some(24))],
            ..FabricConfig::default()
        };
        let mut failover = RegionFailover::default();
        let report = fabric_round_failover_obs(
            &mut c,
            &metric,
            &alerts,
            &vals,
            &cfg,
            &mut failover,
            &mut NullSink,
        );
        assert!(
            report.partition_degraded > 0,
            "the cut shim must notice its shrunken region"
        );
        // emission-based detection: a partitioned-but-alive shim keeps
        // beaconing, so the cut never looks like a crash
        assert_eq!(report.takeovers, 0, "a partition is not a crash");
        assert_eq!(report.fenced, 0, "no epoch bumped, nothing to fence");
        assert_eq!(report.crashed_shims, 0);
        for r in 0..c.dcn.rack_count() {
            assert_eq!(failover.epoch_of(RackId::from_index(r)), 0);
        }
        assert!(report.audit.is_clean(), "{}", report.audit);
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
    }

    #[test]
    fn partitioned_lossy_fabric_is_deterministic() {
        let run = || {
            let mut c = cluster(35);
            let metric = RackMetric::build(&c.dcn, &c.sim);
            let alerts = c.fraction_alerts(0.10, 0);
            let vals = alert_values(&c);
            let cfg = FabricConfig {
                faults: ChannelFaults::lossy(0.05),
                seed: 41,
                partitions: vec![PartitionWindow::new(vec![alerts[0].rack], 2, Some(20))],
                ..FabricConfig::default()
            };
            let mut failover = RegionFailover::default();
            let report = fabric_round_failover_obs(
                &mut c,
                &metric,
                &alerts,
                &vals,
                &cfg,
                &mut failover,
                &mut NullSink,
            );
            let placement: Vec<HostId> = c
                .placement
                .vm_ids()
                .map(|vm| c.placement.host_of(vm))
                .collect();
            (report, placement)
        };
        let (r1, p1) = run();
        let (r2, p2) = run();
        assert_eq!(p1, p2, "same seed, same placement");
        assert!(!p1.is_empty());
        assert_eq!(r1.plan.moves.len(), r2.plan.moves.len());
        for (a, b) in r1.plan.moves.iter().zip(&r2.plan.moves) {
            assert_eq!((a.vm, a.from, a.to), (b.vm, b.from, b.to));
        }
        assert_eq!(
            (r1.drops, r1.resends, r1.ticks, r1.partition_degraded),
            (r2.drops, r2.resends, r2.ticks, r2.partition_degraded)
        );
        assert_eq!(r1.reconciliations, r2.reconciliations);
    }
}

//! The threaded distributed runtime: optimistic per-shim planning with
//! protocol-checked FCFS commits.
//!
//! [`distributed_round_obs`] — each shim plans on its own thread, then all
//! commits funnel through the destination racks' [`ShimEndpoint`]s in
//! deterministic rack order (Alg. 4 FCFS, Sec. II-B/V-B — "each local
//! manager adjusts network traffic locally, they need to communicate
//! between each other to avoid conflictions"). The shared mutex guards
//! only the placement snapshot/commit; the protocol layer decides.
//!
//! The planning core it is built on (PRIORITY victim selection + min-cost
//! matching on a snapshot, Algs. 1–3) is shared with the message-passing
//! fabric runtime in [`fabric`](crate::fabric), which re-expresses the
//! same negotiation as explicit REQUEST/ACK/REJECT messages over a
//! seeded, faulty channel. With a reliable channel and no crashed shims
//! the fabric reproduces this runtime move for move: both issue the
//! identical sequence of Alg. 4 requests in the identical order, so the
//! ACK/REJECT outcomes — and therefore the plans — match.

use crate::audit::{audit_moves, audit_placement, AuditReport};
use crate::matching::{min_cost_assignment_padded, FORBIDDEN};
use crate::priority::{priority, Budget};
use crate::protocol::{RejectReason, ReqId, ShimEndpoint, Verdict};
use crate::vmmigration::{MigrationPlan, Move};
use dcn_sim::engine::Cluster;
use dcn_sim::{Alert, AlertSource, RackMetric, SimConfig};
use dcn_topology::{DependencyGraph, HostId, Inventory, Placement, RackId, VmId};
use parking_lot::Mutex;
use sheriff_obs::{emit, Event, EventSink, RejectKind};
use std::collections::BTreeSet;

/// Map a protocol-level REJECT payload to its observability label.
pub(crate) fn reject_kind(reason: RejectReason) -> RejectKind {
    match reason {
        RejectReason::Capacity => RejectKind::Capacity,
        RejectReason::Conflict => RejectKind::Conflict,
        RejectReason::Noop => RejectKind::Noop,
        RejectReason::Expired => RejectKind::Expired,
        RejectReason::StaleEpoch => RejectKind::Stale,
    }
}

/// Result of one distributed round (either runtime).
#[derive(Debug, Clone, Default)]
pub struct DistributedReport {
    /// Merged migration plan across all shims.
    pub plan: MigrationPlan,
    /// Commit attempts that were rejected and replanned.
    pub retries: usize,
    /// Shims that participated.
    pub shims: usize,
    /// Messages lost by the channel (fabric runtime only).
    pub drops: usize,
    /// Requests whose reply deadline expired at least once.
    pub timeouts: usize,
    /// Retransmissions sent after timeouts.
    pub resends: usize,
    /// Duplicate REQUEST deliveries absorbed by dedup logs.
    pub dedup_hits: usize,
    /// Shims that had to run with part of their region presumed dead.
    pub degraded_shims: usize,
    /// Alerted shims that were crashed and could not participate.
    pub crashed_shims: usize,
    /// Virtual ticks the fabric round took (0 for the threaded runtime).
    pub ticks: u64,
    /// Transactions journalled as `Prepared` (fabric runtime only).
    pub txn_prepared: usize,
    /// Transactions that reached `Committed`.
    pub txn_committed: usize,
    /// Transactions that ended `Aborted` (lease expiry, ABORT, or the
    /// end-of-round sweep).
    pub txn_aborted: usize,
    /// Shims that crashed mid-round and replayed their journal on
    /// recovery.
    pub recoveries: usize,
    /// Regional takeovers: a Dead shim's racks were handed to a neighbor
    /// (each one bumps the rack's epoch).
    pub takeovers: usize,
    /// 2PC messages fenced for carrying a pre-takeover epoch.
    pub fenced: usize,
    /// Shims that planned while cut off from part of their region by an
    /// active network partition (degraded local handling).
    pub partition_degraded: usize,
    /// Pending VMs dropped at partition heal because another manager
    /// handled them during the cut.
    pub reconciliations: usize,
    /// Pre-copy transfers admitted onto the transfer scheduler (fabric
    /// runtime with the network-aware transfer model enabled; 0 otherwise).
    pub transfers_started: usize,
    /// Transfers that streamed to completion and finalized their commit.
    pub transfers_completed: usize,
    /// Transfers steered off their primary route by QCN congestion.
    pub transfer_reroutes: usize,
    /// Admissions delayed because the concurrent-transfer cap was full.
    pub transfer_queue_delays: usize,
    /// Completion time in virtual ticks of every finished transfer, in
    /// completion order.
    pub transfer_durations: Vec<u64>,
    /// Peak number of concurrent transfers sharing one link (≥ 2 means
    /// the round saw bottleneck serialization).
    pub transfer_peak_sharing: usize,
    /// Transfers that entered `Stalled` after a link failure cut every
    /// surviving candidate route (including stalled-at-admission).
    pub transfer_stalls: usize,
    /// Backoff-timer retry probes fired by stalled transfers.
    pub transfer_retries: usize,
    /// Transfers that exhausted their retry budget (or lost an endpoint)
    /// and escalated to a 2PC abort.
    pub transfer_failures: usize,
    /// Checkpointed bytes that resumed transfers did *not* have to
    /// re-copy versus restarting from zero (post-penalty).
    pub resumed_bytes_saved: f64,
    /// Post-round invariant audit (clean when no violations).
    pub audit: AuditReport,
}

/// One planned assignment awaiting the destination's verdict.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Proposal {
    pub(crate) vm: VmId,
    pub(crate) dest: HostId,
    pub(crate) cost: f64,
}

/// Alg. 1/2: pick migration victims for one rack's alerts on a snapshot.
/// Returns the selected set plus the size of the candidate pool PRIORITY
/// examined (for the `victims_selected` observability event).
pub(crate) fn select_victims(
    snapshot: &Placement,
    inventory: &Inventory,
    sim: &SimConfig,
    rack: RackId,
    alerts: &[Alert],
    alert_values: &[f64],
) -> (Vec<VmId>, usize) {
    let mut set: Vec<VmId> = Vec::new();
    let mut candidates = 0usize;
    let mut tor_alert = false;
    for alert in alerts.iter().filter(|a| a.rack == rack) {
        match alert.source {
            AlertSource::Host(h) => {
                let f: Vec<VmId> = snapshot.vms_on(h).to_vec();
                candidates += f.len();
                set.extend(priority(
                    &f,
                    snapshot,
                    |vm| alert_values[vm.index()],
                    Budget::SingleMaxAlert,
                ));
            }
            AlertSource::LocalTor(_) => tor_alert = true,
            AlertSource::OuterSwitch(_) => {} // reroute path not simulated here
        }
    }
    if tor_alert {
        let mut f: Vec<VmId> = Vec::new();
        for &host in inventory.hosts_in(rack) {
            f.extend_from_slice(snapshot.vms_on(host));
        }
        candidates += f.len();
        let budget = sim.beta * inventory.rack(rack).tor_capacity;
        set.extend(priority(
            &f,
            snapshot,
            |vm| alert_values[vm.index()],
            Budget::Capacity(budget),
        ));
    }
    set.sort_unstable();
    set.dedup();
    (set, candidates)
}

/// Destination slots for a shim: every host of the given racks, plus its
/// own rack's hosts (the rack-local fallback of the degradation ladder).
pub(crate) fn region_slots(
    inventory: &Inventory,
    region_racks: &[RackId],
    rack: RackId,
) -> Vec<HostId> {
    let mut slots: Vec<HostId> = Vec::new();
    for &r in region_racks.iter().chain(std::iter::once(&rack)) {
        slots.extend_from_slice(inventory.hosts_in(r));
    }
    slots
}

/// Alg. 3's matching on a snapshot: returns the accepted proposals in
/// victim order, the victims left unassigned, and the explored search
/// space. `banned_hosts` are hosts currently absorbing an in-flight
/// pre-copy — they take no additional arrivals this window, or the
/// independent-cost assumption of Eqn. 1 would double-count them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_proposals(
    snapshot: &Placement,
    deps: &DependencyGraph,
    metric: &RackMetric,
    sim: &SimConfig,
    pending: &[VmId],
    slot_hosts: &[HostId],
    excluded: &[(VmId, HostId)],
    banned_hosts: &BTreeSet<HostId>,
) -> (Vec<Proposal>, Vec<VmId>, usize) {
    if pending.is_empty() || slot_hosts.is_empty() {
        return (Vec::new(), pending.to_vec(), 0);
    }
    let search_space = pending.len() * slot_hosts.len();
    let mut cost = vec![vec![FORBIDDEN; slot_hosts.len()]; pending.len()];
    let mut adjusted = vec![vec![FORBIDDEN; slot_hosts.len()]; pending.len()];
    for (i, &vm) in pending.iter().enumerate() {
        let spec = snapshot.spec(vm);
        let from_host = snapshot.host_of(vm);
        let from_rack = snapshot.rack_of(vm);
        for (j, &host) in slot_hosts.iter().enumerate() {
            if host == from_host
                || banned_hosts.contains(&host)
                || excluded.contains(&(vm, host))
                || snapshot.free_capacity(host) < spec.capacity
                || deps.conflicts_on_host(vm, host, snapshot)
            {
                continue;
            }
            let to_rack = snapshot.rack_of_host(host);
            if !metric.reachable(from_rack, to_rack) {
                continue;
            }
            let chi = deps.chi(vm, to_rack, snapshot);
            let c = metric.migration_cost(sim, spec.capacity, from_rack, to_rack, chi);
            let post_util =
                (snapshot.used_capacity(host) + spec.capacity) / snapshot.host_capacity(host);
            cost[i][j] = c;
            adjusted[i][j] = c + sim.load_balance_weight * post_util;
        }
    }
    let (assignment, _) = min_cost_assignment_padded(&adjusted);
    let mut proposals = Vec::new();
    let mut unassigned = Vec::new();
    for (i, assigned) in assignment.into_iter().enumerate() {
        match assigned {
            Some(j) => proposals.push(Proposal {
                vm: pending[i],
                dest: slot_hosts[j],
                cost: cost[i][j],
            }),
            None => unassigned.push(pending[i]),
        }
    }
    (proposals, unassigned, search_space)
}

/// Per-shim negotiation state shared by both runtimes' bookkeeping.
pub(crate) struct ShimState {
    pub(crate) rack: RackId,
    pub(crate) pending: Vec<VmId>,
    pub(crate) slots: Vec<HostId>,
    pub(crate) excluded: Vec<(VmId, HostId)>,
    pub(crate) plan: MigrationPlan,
    pub(crate) retries: usize,
    pub(crate) seq: u32,
    pub(crate) active: bool,
}

/// Run one management round with every alerted shim planning on its own
/// thread and committing through the destination racks' protocol
/// endpoints in deterministic rack order.
///
/// `alert_values[vm]` supplies the ALERT magnitude for PRIORITY's `w = 1`
/// branch. Mutates `cluster.placement` in place on return.
#[cfg(feature = "legacy")]
#[deprecated(
    since = "0.1.0",
    note = "use `DistributedRuntime` via the `Runtime` trait, or `distributed_round_obs`"
)]
pub fn distributed_round(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    max_retry: usize,
) -> DistributedReport {
    distributed_round_obs(
        cluster,
        metric,
        alerts,
        alert_values,
        max_retry,
        &mut sheriff_obs::NullSink,
    )
}

/// The threaded shim round with an [`EventSink`] observing the
/// negotiation (the deprecated `distributed_round` wrapper is this with
/// a [`NullSink`](sheriff_obs::NullSink), behind the `legacy` feature).
///
/// Planning still runs one thread per shim; events are emitted only from
/// the single-threaded victim-selection and commit phases, in
/// deterministic rack/request order, so the event stream is reproducible
/// and the sink needs no synchronization.
pub fn distributed_round_obs<S: EventSink + ?Sized>(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    max_retry: usize,
    sink: &mut S,
) -> DistributedReport {
    let mut racks: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
    racks.sort_unstable();
    racks.dedup();
    if racks.is_empty() {
        return DistributedReport::default();
    }

    let deps = &cluster.deps;
    let inventory = &cluster.dcn.inventory;
    let sim = &cluster.sim;
    let shared = Mutex::new(cluster.placement.clone());
    let mut endpoints: Vec<ShimEndpoint> = (0..cluster.dcn.rack_count())
        .map(|r| ShimEndpoint::new(RackId::from_index(r)))
        .collect();

    // victim selection on the initial snapshot (Alg. 1)
    let mut states: Vec<ShimState> = {
        let snapshot = shared.lock().clone();
        racks
            .iter()
            .map(|&rack| {
                let (pending, candidates) =
                    select_victims(&snapshot, inventory, sim, rack, alerts, alert_values);
                emit(sink, || Event::VictimsSelected {
                    rack: rack.index() as u64,
                    candidates: candidates as u64,
                    selected: pending.len() as u64,
                });
                let region = cluster.dcn.neighbor_racks(rack, sim.region_hops);
                let slots = region_slots(inventory, &region, rack);
                ShimState {
                    rack,
                    active: !pending.is_empty() && !slots.is_empty(),
                    pending,
                    slots,
                    excluded: Vec::new(),
                    plan: MigrationPlan::default(),
                    retries: 0,
                    seq: 0,
                }
            })
            .collect()
    };

    for _round in 0..=max_retry {
        let idxs: Vec<usize> = (0..states.len()).filter(|&i| states[i].active).collect();
        if idxs.is_empty() {
            break;
        }
        // optimistic planning, one thread per active shim, on one snapshot
        let snapshot = shared.lock().clone();
        let proposals: Vec<(Vec<Proposal>, Vec<VmId>, usize)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = idxs
                .iter()
                .map(|&i| {
                    let st = &states[i];
                    let snapshot = &snapshot;
                    scope.spawn(move |_| {
                        plan_proposals(
                            snapshot,
                            deps,
                            metric,
                            sim,
                            &st.pending,
                            &st.slots,
                            &st.excluded,
                            &BTreeSet::new(),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("planner thread panicked"))
                .collect()
        })
        .expect("thread scope failed");

        // pessimistic commit: FCFS through each destination's endpoint,
        // shims in rack order, requests in matching order
        let mut placement = shared.lock();
        for (&i, (props, unassigned, space)) in idxs.iter().zip(proposals) {
            let st = &mut states[i];
            st.plan.search_space += space;
            emit(sink, || Event::PlanComputed {
                rack: st.rack.index() as u64,
                proposals: props.len() as u64,
                unassigned: unassigned.len() as u64,
                search_space: space as u64,
            });
            let mut next_pending = unassigned;
            let mut progressed = false;
            for p in props {
                let from = placement.host_of(p.vm);
                let dest_rack = placement.rack_of_host(p.dest);
                let req_id = ReqId::new(st.rack, st.seq);
                st.seq += 1;
                emit(sink, || Event::RequestSent {
                    req: req_id.0,
                    vm: p.vm.index() as u64,
                    dest_host: p.dest.index() as u64,
                    attempt: 1,
                });
                match endpoints[dest_rack.index()].handle_request(
                    &mut placement,
                    deps,
                    req_id,
                    p.vm,
                    p.dest,
                ) {
                    Verdict::Ack => {
                        emit(sink, || Event::AckReceived {
                            req: req_id.0,
                            vm: p.vm.index() as u64,
                        });
                        emit(sink, || Event::MigrationCommitted {
                            vm: p.vm.index() as u64,
                            from_host: from.index() as u64,
                            to_host: p.dest.index() as u64,
                            cost: p.cost,
                        });
                        sink.counter("migrations.committed", 1);
                        st.plan.moves.push(Move {
                            vm: p.vm,
                            from,
                            to: p.dest,
                            cost: p.cost,
                        });
                        st.plan.total_cost += p.cost;
                        progressed = true;
                    }
                    Verdict::Reject(reason) => {
                        emit(sink, || Event::RejectReceived {
                            req: req_id.0,
                            vm: p.vm.index() as u64,
                            reason: reject_kind(reason),
                        });
                        sink.counter("migrations.rejected", 1);
                        st.plan.rejected += 1;
                        st.retries += 1;
                        st.excluded.push((p.vm, p.dest));
                        next_pending.push(p.vm);
                    }
                }
            }
            st.pending = next_pending;
            st.active = progressed && !st.pending.is_empty();
        }
    }

    let mut report = DistributedReport {
        shims: racks.len(),
        ..DistributedReport::default()
    };
    for mut st in states {
        st.plan.unplaced.extend(st.pending);
        report.plan.absorb(st.plan);
        report.retries += st.retries;
    }
    report.dedup_hits = endpoints.iter().map(|e| e.dedup_hits()).sum();
    cluster.placement = shared.into_inner();
    report.audit = audit_placement(&cluster.placement, &cluster.deps);
    report.audit.merge(audit_moves(
        &cluster.placement,
        report.plan.moves.iter().map(|m| (m.vm, m.to)),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::ClusterConfig;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use sheriff_obs::NullSink;

    fn cluster(seed: u64) -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(8));
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 3.0,
                seed,
                ..ClusterConfig::default()
            },
            dcn_sim::SimConfig::paper(),
        )
    }

    fn alert_values(c: &Cluster) -> Vec<f64> {
        c.placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect()
    }

    fn assert_capacity_ok(c: &Cluster) {
        for h in 0..c.placement.host_count() {
            let h = HostId::from_index(h);
            assert!(
                c.placement.used_capacity(h) <= c.placement.host_capacity(h) + 1e-9,
                "host {h} over capacity"
            );
        }
    }

    fn assert_deps_ok(c: &Cluster) {
        for vm in c.placement.vm_ids() {
            let host = c.placement.host_of(vm);
            for &other in c.placement.vms_on(host) {
                if other != vm {
                    assert!(
                        !c.deps.dependent(vm, other),
                        "dependent VMs {vm} and {other} co-located on {host}"
                    );
                }
            }
        }
    }

    #[test]
    fn concurrent_shims_preserve_capacity_invariants() {
        let mut c = cluster(21);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let report = distributed_round_obs(&mut c, &metric, &alerts, &vals, 3, &mut NullSink);
        assert!(report.shims > 1, "want true concurrency in this test");
        assert!(!report.plan.moves.is_empty());
        assert_capacity_ok(&c);
    }

    #[test]
    fn concurrent_shims_respect_dependency_conflicts() {
        let mut c = cluster(22);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let _ = distributed_round_obs(&mut c, &metric, &alerts, &vals, 3, &mut NullSink);
        assert_deps_ok(&c);
    }

    #[test]
    fn distributed_round_improves_balance() {
        let mut c = cluster(23);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let before = c.utilization_stddev();
        for t in 0..6 {
            let alerts = c.fraction_alerts(0.05, t);
            let vals = alert_values(&c);
            distributed_round_obs(&mut c, &metric, &alerts, &vals, 3, &mut NullSink);
        }
        let after = c.utilization_stddev();
        assert!(after < before, "std-dev {before} -> {after}");
    }

    #[test]
    fn moves_recorded_match_final_placement() {
        let mut c = cluster(24);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.05, 0);
        let vals = alert_values(&c);
        let report = distributed_round_obs(&mut c, &metric, &alerts, &vals, 3, &mut NullSink);
        // each VM's final host equals its last recorded move
        let mut last: std::collections::HashMap<VmId, HostId> = Default::default();
        for m in &report.plan.moves {
            last.insert(m.vm, m.to);
        }
        for (vm, to) in last {
            assert_eq!(c.placement.host_of(vm), to);
        }
        let sum: f64 = report.plan.moves.iter().map(|m| m.cost).sum();
        assert!((report.plan.total_cost - sum).abs() < 1e-9);
    }

    #[test]
    fn no_alerts_is_a_noop() {
        let mut c = cluster(25);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let before = c.utilization_stddev();
        let report = distributed_round_obs(&mut c, &metric, &[], &[], 3, &mut NullSink);
        assert_eq!(report.shims, 0);
        assert!(report.plan.moves.is_empty());
        assert_eq!(c.utilization_stddev(), before);
    }
}

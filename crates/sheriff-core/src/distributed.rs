//! The threaded shim runtime: each shim runs on its own thread, plans
//! migrations against a snapshot of the cluster state, and commits through
//! the FCFS REQUEST/ACK protocol of Alg. 4 (Sec. II-B/V-B — "each local
//! manager adjusts network traffic locally, they need to communicate
//! between each other to avoid conflictions").
//!
//! Concurrency model: optimistic planning, pessimistic commit. A shim
//! clones the placement under a brief lock, solves PRIORITY + matching on
//! the snapshot, then re-validates and commits each move under the lock —
//! exactly the paper's "a node can be migrated to another place only when
//! the destination's delegation node accepts the migration request;
//! otherwise … v_i should recalculate".

use crate::matching::{min_cost_assignment_padded, FORBIDDEN};
use crate::priority::{priority, Budget};
use crate::request::{request_migration, RequestOutcome};
use crate::vmmigration::{MigrationPlan, Move};
use dcn_sim::engine::Cluster;
use dcn_sim::{Alert, AlertSource, RackMetric, SimConfig};
use dcn_topology::{DependencyGraph, HostId, Inventory, Placement, RackId, VmId};
use parking_lot::Mutex;

/// Result of one distributed round.
#[derive(Debug, Clone, Default)]
pub struct DistributedReport {
    /// Merged migration plan across all shims.
    pub plan: MigrationPlan,
    /// Commit attempts that were rejected and retried.
    pub retries: usize,
    /// Shim threads that ran.
    pub shims: usize,
}

/// Run one management round with every alerted shim on its own thread.
///
/// `alert_values[vm]` supplies the ALERT magnitude for PRIORITY's `w = 1`
/// branch. Mutates `cluster.placement` in place on return.
pub fn distributed_round(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    max_retry: usize,
) -> DistributedReport {
    let mut racks: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
    racks.sort_unstable();
    racks.dedup();
    if racks.is_empty() {
        return DistributedReport::default();
    }

    let shared = Mutex::new(cluster.placement.clone());
    let deps = &cluster.deps;
    let inventory = &cluster.dcn.inventory;
    let sim = &cluster.sim;
    let regions: Vec<Vec<RackId>> = racks
        .iter()
        .map(|&r| cluster.dcn.neighbor_racks(r, sim.region_hops))
        .collect();

    let mut report = DistributedReport {
        shims: racks.len(),
        ..DistributedReport::default()
    };

    let results: Vec<(MigrationPlan, usize)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = racks
            .iter()
            .enumerate()
            .map(|(i, &rack)| {
                let shared = &shared;
                let region = &regions[i];
                scope.spawn(move |_| {
                    shim_worker(
                        shared,
                        inventory,
                        deps,
                        metric,
                        sim,
                        rack,
                        region,
                        alerts,
                        alert_values,
                        max_retry,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shim thread panicked"))
            .collect()
    })
    .expect("thread scope failed");

    for (plan, retries) in results {
        report.plan.absorb(plan);
        report.retries += retries;
    }
    cluster.placement = shared.into_inner();
    report
}

/// One shim's work: select victims, plan on a snapshot, commit under the
/// shared lock with revalidation, retry on rejection.
#[allow(clippy::too_many_arguments)]
fn shim_worker(
    shared: &Mutex<Placement>,
    inventory: &Inventory,
    deps: &DependencyGraph,
    metric: &RackMetric,
    sim: &SimConfig,
    rack: RackId,
    region: &[RackId],
    alerts: &[Alert],
    alert_values: &[f64],
    max_retry: usize,
) -> (MigrationPlan, usize) {
    let mut plan = MigrationPlan::default();
    let mut retries = 0usize;

    // victim selection on the first snapshot (Alg. 1)
    let mut pending: Vec<VmId> = {
        let snapshot = shared.lock().clone();
        let mut set: Vec<VmId> = Vec::new();
        let mut tor_alert = false;
        for alert in alerts.iter().filter(|a| a.rack == rack) {
            match alert.source {
                AlertSource::Host(h) => {
                    let f: Vec<VmId> = snapshot.vms_on(h).to_vec();
                    set.extend(priority(
                        &f,
                        &snapshot,
                        |vm| alert_values[vm.index()],
                        Budget::SingleMaxAlert,
                    ));
                }
                AlertSource::LocalTor(_) => tor_alert = true,
                AlertSource::OuterSwitch(_) => {} // reroute path not simulated here
            }
        }
        if tor_alert {
            let mut f: Vec<VmId> = Vec::new();
            for &host in inventory.hosts_in(rack) {
                f.extend_from_slice(snapshot.vms_on(host));
            }
            let budget = sim.beta * inventory.rack(rack).tor_capacity;
            set.extend(priority(
                &f,
                &snapshot,
                |vm| alert_values[vm.index()],
                Budget::Capacity(budget),
            ));
        }
        set.sort_unstable();
        set.dedup();
        set
    };

    // destination slots: the region plus this rack
    let mut slot_hosts: Vec<HostId> = Vec::new();
    for &r in region.iter().chain(std::iter::once(&rack)) {
        slot_hosts.extend_from_slice(inventory.hosts_in(r));
    }

    let mut excluded: Vec<(VmId, HostId)> = Vec::new();
    for _attempt in 0..=max_retry {
        if pending.is_empty() || slot_hosts.is_empty() {
            break;
        }
        // optimistic plan on a snapshot
        let snapshot = shared.lock().clone();
        plan.search_space += pending.len() * slot_hosts.len();
        let mut cost = vec![vec![FORBIDDEN; slot_hosts.len()]; pending.len()];
        let mut adjusted = vec![vec![FORBIDDEN; slot_hosts.len()]; pending.len()];
        for (i, &vm) in pending.iter().enumerate() {
            let spec = snapshot.spec(vm);
            let from_host = snapshot.host_of(vm);
            let from_rack = snapshot.rack_of(vm);
            for (j, &host) in slot_hosts.iter().enumerate() {
                if host == from_host
                    || excluded.contains(&(vm, host))
                    || snapshot.free_capacity(host) < spec.capacity
                    || deps.conflicts_on_host(vm, host, &snapshot)
                {
                    continue;
                }
                let to_rack = snapshot.rack_of_host(host);
                if !metric.reachable(from_rack, to_rack) {
                    continue;
                }
                let chi = deps.chi(vm, to_rack, &snapshot);
                let c = metric.migration_cost(sim, spec.capacity, from_rack, to_rack, chi);
                let post_util =
                    (snapshot.used_capacity(host) + spec.capacity) / snapshot.host_capacity(host);
                cost[i][j] = c;
                adjusted[i][j] = c + sim.load_balance_weight * post_util;
            }
        }
        let (assignment, _) = min_cost_assignment_padded(&adjusted);

        // pessimistic commit: FCFS under the lock, revalidated by Alg. 4
        let mut next_pending = Vec::new();
        let mut progressed = false;
        {
            let mut placement = shared.lock();
            for (i, assigned) in assignment.into_iter().enumerate() {
                let vm = pending[i];
                let Some(j) = assigned else {
                    next_pending.push(vm);
                    continue;
                };
                let host = slot_hosts[j];
                let from = placement.host_of(vm);
                match request_migration(&mut placement, deps, vm, host) {
                    RequestOutcome::Ack => {
                        plan.moves.push(Move {
                            vm,
                            from,
                            to: host,
                            cost: cost[i][j],
                        });
                        plan.total_cost += cost[i][j];
                        progressed = true;
                    }
                    _ => {
                        plan.rejected += 1;
                        retries += 1;
                        excluded.push((vm, host));
                        next_pending.push(vm);
                    }
                }
            }
        }
        pending = next_pending;
        if !progressed {
            break;
        }
    }
    plan.unplaced.extend(pending);
    (plan, retries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::ClusterConfig;
    use dcn_topology::fattree::{self, FatTreeConfig};

    fn cluster(seed: u64) -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(8));
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 3.0,
                seed,
                ..ClusterConfig::default()
            },
            dcn_sim::SimConfig::paper(),
        )
    }

    fn alert_values(c: &Cluster) -> Vec<f64> {
        c.placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect()
    }

    #[test]
    fn concurrent_shims_preserve_capacity_invariants() {
        let mut c = cluster(21);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let report = distributed_round(&mut c, &metric, &alerts, &vals, 3);
        assert!(report.shims > 1, "want true concurrency in this test");
        assert!(!report.plan.moves.is_empty());
        for h in 0..c.placement.host_count() {
            let h = HostId::from_index(h);
            assert!(
                c.placement.used_capacity(h) <= c.placement.host_capacity(h) + 1e-9,
                "host {h} over capacity"
            );
        }
    }

    #[test]
    fn concurrent_shims_respect_dependency_conflicts() {
        let mut c = cluster(22);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let _ = distributed_round(&mut c, &metric, &alerts, &vals, 3);
        for vm in c.placement.vm_ids() {
            let host = c.placement.host_of(vm);
            for &other in c.placement.vms_on(host) {
                if other != vm {
                    assert!(
                        !c.deps.dependent(vm, other),
                        "dependent VMs {vm} and {other} co-located on {host}"
                    );
                }
            }
        }
    }

    #[test]
    fn distributed_round_improves_balance() {
        let mut c = cluster(23);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let before = c.utilization_stddev();
        for t in 0..6 {
            let alerts = c.fraction_alerts(0.05, t);
            let vals = alert_values(&c);
            distributed_round(&mut c, &metric, &alerts, &vals, 3);
        }
        let after = c.utilization_stddev();
        assert!(after < before, "std-dev {before} -> {after}");
    }

    #[test]
    fn moves_recorded_match_final_placement() {
        let mut c = cluster(24);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.05, 0);
        let vals = alert_values(&c);
        let report = distributed_round(&mut c, &metric, &alerts, &vals, 3);
        // each VM's final host equals its last recorded move
        let mut last: std::collections::HashMap<VmId, HostId> = Default::default();
        for m in &report.plan.moves {
            last.insert(m.vm, m.to);
        }
        for (vm, to) in last {
            assert_eq!(c.placement.host_of(vm), to);
        }
        let sum: f64 = report.plan.moves.iter().map(|m| m.cost).sum();
        assert!((report.plan.total_cost - sum).abs() < 1e-9);
    }

    #[test]
    fn no_alerts_is_a_noop() {
        let mut c = cluster(25);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let before = c.utilization_stddev();
        let report = distributed_round(&mut c, &metric, &[], &[], 3);
        assert_eq!(report.shims, 0);
        assert!(report.plan.moves.is_empty());
        assert_eq!(c.utilization_stddev(), before);
    }
}

//! Alg. 1 — the Pre-Alert Management Procedure run by each shim every `T`
//! seconds.
//!
//! The shim walks its alert set: outer-switch alerts gather reroute
//! victims via `PRIORITY(F, α)`; host alerts gather migration victims via
//! `PRIORITY(F, 1)`; local-ToR alerts are batched and, if any, a
//! `PRIORITY(F, β)` pass over the whole rack adds more migration victims.
//! Finally VMMIGRATION places the victims and FLOWREROUTE moves the
//! conflicted flows.

use crate::priority::{priority, Budget};
use crate::reroute::{flow_reroute, flow_reroute_balanced, RerouteReport};
use crate::vmmigration::{vmmigration_scoped_obs, MigrationContext, MigrationPlan};
use dcn_sim::flows::FlowNetwork;
use dcn_sim::{Alert, AlertSource};
use dcn_topology::{Dcn, NodeId, RackId, VmId};
use sheriff_obs::{emit, Event, EventSink, NullSink};

/// Everything one shim did in one management round.
#[derive(Debug, Clone, Default)]
pub struct ShimOutcome {
    /// The migration plan executed (empty when no migration victims).
    pub plan: MigrationPlan,
    /// Flow-reroute accounting across all outer-switch alerts.
    pub reroutes: RerouteReport,
    /// Victims selected for migration (before placement attempts).
    pub migration_candidates: usize,
}

/// Run Alg. 1 for the shim of `rack` over the alerts addressed to it.
///
/// * `region` — the racks of this shim's dominating region (destination
///   candidates for VMMIGRATION).
/// * `flows` — the flow network, when flow-level state is simulated;
///   outer-switch alerts are ignored without it.
/// * `alert_of` — per-VM ALERT values (Sec. IV-C) used by the `w = 1`
///   branch of PRIORITY.
/// * `max_rounds` — retry bound for the VMMIGRATION negotiation.
#[allow(clippy::too_many_arguments)] // the paper's Alg. 1 signature: state + alerts + knobs
pub fn pre_alert_management(
    ctx: &mut MigrationContext<'_>,
    dcn: &Dcn,
    flows: Option<&mut FlowNetwork>,
    rack: RackId,
    region: &[RackId],
    alerts: &[Alert],
    alert_of: &dyn Fn(VmId) -> f64,
    max_rounds: usize,
) -> ShimOutcome {
    pre_alert_management_obs(
        ctx,
        dcn,
        flows,
        rack,
        region,
        alerts,
        alert_of,
        max_rounds,
        &mut NullSink,
    )
}

/// [`pre_alert_management`] with instrumentation: PRIORITY selections
/// (`victims_selected`), reroute outcomes (`flows_rerouted`) and the
/// whole VMMIGRATION negotiation are emitted to `sink`.
#[allow(clippy::too_many_arguments)] // Alg. 1 signature + sink
pub fn pre_alert_management_obs<S: EventSink + ?Sized>(
    ctx: &mut MigrationContext<'_>,
    dcn: &Dcn,
    mut flows: Option<&mut FlowNetwork>,
    rack: RackId,
    region: &[RackId],
    alerts: &[Alert],
    alert_of: &dyn Fn(VmId) -> f64,
    max_rounds: usize,
    sink: &mut S,
) -> ShimOutcome {
    let mut outcome = ShimOutcome::default();
    let mut candidate_pool = 0usize;
    let mut migration_set: Vec<VmId> = Vec::new();
    let mut tor_alert = false;

    for alert in alerts.iter().filter(|a| a.rack == rack) {
        match alert.source {
            AlertSource::OuterSwitch(sw) => {
                // conflict flows from local VMs passing through s_j
                let Some(flow_net) = flows.as_deref_mut() else {
                    continue;
                };
                let local_flow_ids: Vec<usize> = flow_net
                    .flows_through_switch(dcn, sw)
                    .into_iter()
                    .filter(|&f| ctx.placement.rack_of(flow_net.flows()[f].src) == rack)
                    .collect();
                // Alg. 2's α branch in *flow-rate* units. Rerouting every
                // flow off the switch just moves the herd to the next
                // path (and oscillates); instead, relieve exactly enough:
                // pull the largest offenders until the switch's worst
                // incident link drops an α-portion below capacity. Delay-
                // sensitive VMs stay exempt.
                // rerouting moves packets, not the VM, so only the
                // *flow's* delay-sensitivity matters here (a DS VM's bulk
                // flows may detour; its latency-critical flows may not)
                let mut rate_of: std::collections::HashMap<VmId, f64> = Default::default();
                for &f in &local_flow_ids {
                    let flow = &flow_net.flows()[f];
                    if !flow.delay_sensitive {
                        *rate_of.entry(flow.src).or_insert(0.0) += flow.rate;
                    }
                }
                let mut ranked: Vec<(VmId, f64)> = rate_of.into_iter().collect();
                ranked.sort_by(|a, b| {
                    // total_cmp: a NaN rate/value (corrupt input) must not
                    // abort the whole management round — it gets a fixed
                    // place in the order instead
                    b.1.total_cmp(&a.1)
                        .then_with(|| {
                            ctx.placement
                                .spec(a.0)
                                .value
                                .total_cmp(&ctx.placement.spec(b.0).value)
                        })
                        .then(a.0.cmp(&b.0))
                });
                // overshoot of the worst incident link above the
                // (1 − α)·capacity target
                let overshoot = match dcn.graph.node_idx(NodeId::Switch(sw)) {
                    Some(node) => dcn
                        .graph
                        .neighbors(node)
                        .iter()
                        .map(|&(_, e)| {
                            flow_net.load(e) - (1.0 - ctx.sim.alpha) * dcn.graph.link(e).capacity
                        })
                        .fold(0.0f64, f64::max),
                    None => 0.0,
                };
                let mut chosen: Vec<VmId> = Vec::new();
                let mut to_remove = overshoot;
                for (vm, rate) in ranked {
                    if to_remove <= 0.0 {
                        break;
                    }
                    to_remove -= rate;
                    chosen.push(vm);
                }
                let chosen_flow_ids: Vec<usize> = local_flow_ids
                    .into_iter()
                    .filter(|&f| chosen.contains(&flow_net.flows()[f].src))
                    .collect();
                let r = if ctx.sim.reroute_paths > 1 {
                    flow_reroute_balanced(
                        dcn,
                        ctx.placement,
                        flow_net,
                        sw,
                        &chosen_flow_ids,
                        ctx.sim.reroute_paths,
                    )
                } else {
                    flow_reroute(dcn, ctx.placement, flow_net, sw, &chosen_flow_ids)
                };
                emit(sink, || Event::FlowsRerouted {
                    rack: rack.index() as u64,
                    rerouted: r.rerouted as u64,
                    stuck: r.stuck as u64,
                });
                sink.counter("reroutes.flows", r.rerouted as u64);
                outcome.reroutes.rerouted += r.rerouted;
                outcome.reroutes.stuck += r.stuck;
                outcome.reroutes.skipped_delay_sensitive += r.skipped_delay_sensitive;
            }
            AlertSource::LocalTor(_) => {
                tor_alert = true;
            }
            AlertSource::Host(h) => {
                let f: Vec<VmId> = ctx.placement.vms_on(h).to_vec();
                candidate_pool += f.len();
                migration_set.extend(priority(
                    &f,
                    ctx.placement,
                    alert_of,
                    Budget::SingleMaxAlert,
                ));
            }
        }
    }

    if tor_alert {
        // every VM in the rack is a candidate; release a β-portion of the
        // ToR capacity
        let mut f: Vec<VmId> = Vec::new();
        for &host in ctx.inventory.hosts_in(rack) {
            f.extend_from_slice(ctx.placement.vms_on(host));
        }
        let tor_capacity = ctx.inventory.rack(rack).tor_capacity;
        candidate_pool += f.len();
        migration_set.extend(priority(
            &f,
            ctx.placement,
            alert_of,
            Budget::Capacity(ctx.sim.beta * tor_capacity),
        ));
    }

    migration_set.sort_unstable();
    migration_set.dedup();
    outcome.migration_candidates = migration_set.len();
    if !migration_set.is_empty() {
        emit(sink, || Event::VictimsSelected {
            rack: rack.index() as u64,
            candidates: candidate_pool as u64,
            selected: migration_set.len() as u64,
        });
        outcome.plan = vmmigration_scoped_obs(ctx, &migration_set, region, max_rounds, true, sink);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::{Cluster, ClusterConfig};
    use dcn_sim::flows::Flow;
    use dcn_sim::{RackMetric, SimConfig};
    use dcn_topology::fattree::{self, FatTreeConfig};
    use dcn_topology::HostId;

    fn cluster() -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 3.0,
                seed: 11,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        )
    }

    fn alert_of_capacity(c: &Cluster) -> impl Fn(VmId) -> f64 + '_ {
        |vm| c.placement.utilization(c.placement.host_of(vm))
    }

    #[test]
    fn host_alert_migrates_one_vm() {
        let mut c = cluster();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        // most loaded host
        let host = (0..c.placement.host_count())
            .map(HostId::from_index)
            .max_by(|&a, &b| {
                c.placement
                    .utilization(a)
                    .partial_cmp(&c.placement.utilization(b))
                    .unwrap()
            })
            .unwrap();
        let rack = c.placement.rack_of_host(host);
        let region = c.dcn.neighbor_racks(rack, 4);
        let alerts = vec![Alert {
            rack,
            source: AlertSource::Host(host),
            severity: 0.95,
            time: 0,
        }];
        let alert_vals: Vec<f64> = c
            .placement
            .vm_ids()
            .map(|vm| c.placement.spec(vm).capacity / 20.0)
            .collect();
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let out = pre_alert_management(
            &mut ctx,
            &c.dcn,
            None,
            rack,
            &region,
            &alerts,
            &|vm| alert_vals[vm.index()],
            5,
        );
        assert_eq!(
            out.migration_candidates, 1,
            "w = 1 must pick exactly one VM"
        );
        assert_eq!(out.plan.moves.len(), 1);
        assert_ne!(c.placement.host_of(out.plan.moves[0].vm), host);
    }

    #[test]
    fn tor_alert_selects_beta_portion() {
        let mut c = cluster();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let rack = dcn_topology::RackId(0);
        let region = c.dcn.neighbor_racks(rack, 4);
        let alerts = vec![Alert {
            rack,
            source: AlertSource::LocalTor(rack),
            severity: 0.95,
            time: 0,
        }];
        let beta_budget = c.sim.beta * c.dcn.inventory.rack(rack).tor_capacity;
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let out =
            pre_alert_management(&mut ctx, &c.dcn, None, rack, &region, &alerts, &|_| 0.95, 5);
        // selected victims' total capacity must respect the β budget
        let total: f64 = out
            .plan
            .moves
            .iter()
            .map(|m| c.placement.spec(m.vm).capacity)
            .sum();
        assert!(
            total <= beta_budget + 1e-9,
            "moved {total} > β budget {beta_budget}"
        );
    }

    #[test]
    fn outer_switch_alert_triggers_reroute_not_migration() {
        let mut c = cluster();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        // build a hot flow from rack 0 to rack 1
        let src_vm = c
            .placement
            .vm_ids()
            .find(|&vm| {
                c.placement.rack_of(vm) == dcn_topology::RackId(0)
                    && !c.placement.spec(vm).delay_sensitive
            })
            .expect("rack 0 has migratable VMs");
        let dst_vm = c
            .placement
            .vm_ids()
            .find(|&vm| c.placement.rack_of(vm) == dcn_topology::RackId(1))
            .expect("rack 1 has VMs");
        let mut flows = FlowNetwork::route(
            &c.dcn,
            &c.placement,
            vec![Flow {
                src: src_vm,
                dst: dst_vm,
                rate: 0.95,
                delay_sensitive: false,
            }],
        );
        let hot = flows.congested_switches(&c.dcn, 0.9);
        let (sw, _) = hot[0];
        let rack = dcn_topology::RackId(0);
        let region = c.dcn.neighbor_racks(rack, 4);
        let alerts = vec![Alert {
            rack,
            source: AlertSource::OuterSwitch(sw),
            severity: 0.95,
            time: 0,
        }];
        let f = alert_of_capacity(&c);
        let alert_vals: Vec<f64> = c.placement.vm_ids().map(&f).collect();
        drop(f);
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let out = pre_alert_management(
            &mut ctx,
            &c.dcn,
            Some(&mut flows),
            rack,
            &region,
            &alerts,
            &|vm| alert_vals[vm.index()],
            5,
        );
        assert_eq!(out.plan.moves.len(), 0, "switch alerts must not migrate");
        assert_eq!(out.reroutes.rerouted, 1);
        assert!(flows.flows_through_switch(&c.dcn, sw).is_empty());
    }

    #[test]
    fn alerts_for_other_racks_ignored() {
        let mut c = cluster();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let rack = dcn_topology::RackId(0);
        let other = dcn_topology::RackId(3);
        let region = c.dcn.neighbor_racks(rack, 4);
        let alerts = vec![Alert {
            rack: other,
            source: AlertSource::LocalTor(other),
            severity: 0.99,
            time: 0,
        }];
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let out =
            pre_alert_management(&mut ctx, &c.dcn, None, rack, &region, &alerts, &|_| 0.95, 5);
        assert_eq!(out.migration_candidates, 0);
        assert!(out.plan.moves.is_empty());
    }
}

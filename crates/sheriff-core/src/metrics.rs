//! Aggregate evaluation metrics used by the experiment harness
//! (Fig. 9–14): balance trajectories, cost/search-space accumulation, and
//! the empirical approximation-ratio record.

use crate::vmmigration::MigrationPlan;
use serde::{Deserialize, Serialize};

/// A labelled experiment series: (x, y) points with axis names, exactly
/// what each paper figure plots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Series label (e.g. "Sheriff", "Centralized Manager").
    pub label: String,
    /// X-axis values.
    pub x: Vec<f64>,
    /// Y-axis values.
    pub y: Vec<f64>,
}

impl Series {
    /// Build a series from integer x values.
    pub fn from_points(label: impl Into<String>, points: &[(f64, f64)]) -> Self {
        Self {
            label: label.into(),
            x: points.iter().map(|p| p.0).collect(),
            y: points.iter().map(|p| p.1).collect(),
        }
    }

    /// True when the series is (weakly) decreasing within tolerance `tol`
    /// — used to verify the Fig. 9/10 "keeps going down" claim.
    pub fn is_decreasing(&self, tol: f64) -> bool {
        self.y.windows(2).all(|w| w[1] <= w[0] + tol)
    }

    /// Relative drop from first to last point.
    pub fn total_drop(&self) -> f64 {
        match (self.y.first(), self.y.last()) {
            (Some(&a), Some(&b)) if a != 0.0 => (a - b) / a,
            _ => 0.0,
        }
    }
}

/// Cumulative counters across rounds or shims.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Totals {
    /// Committed migrations.
    pub moves: usize,
    /// Total Eqn. 1 cost.
    pub cost: f64,
    /// Candidate pairs examined.
    pub search_space: usize,
    /// Rejected REQUESTs.
    pub rejected: usize,
}

impl Totals {
    /// Fold a plan into the totals.
    pub fn add(&mut self, plan: &MigrationPlan) {
        self.moves += plan.moves.len();
        self.cost += plan.total_cost;
        self.search_space += plan.search_space;
        self.rejected += plan.rejected;
    }
}

/// One data point of the approximation-ratio experiment (Sec. VI-C).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RatioPoint {
    /// Swap size `p`.
    pub p: usize,
    /// Empirical cost(local search) / cost(optimal).
    pub ratio: f64,
    /// The theoretical bound `3 + 2/p`.
    pub bound: f64,
}

impl RatioPoint {
    /// Build a point, computing the bound from `p`.
    pub fn new(p: usize, ls_cost: f64, opt_cost: f64) -> Self {
        Self {
            p,
            ratio: if opt_cost > 0.0 {
                ls_cost / opt_cost
            } else {
                1.0
            },
            bound: 3.0 + 2.0 / p as f64,
        }
    }

    /// Does the empirical ratio respect the theoretical guarantee?
    pub fn within_bound(&self) -> bool {
        self.ratio <= self.bound + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmmigration::Move;
    use dcn_topology::{HostId, VmId};

    #[test]
    fn series_decrease_detection() {
        let s = Series::from_points("t", &[(0.0, 45.0), (1.0, 30.0), (2.0, 20.0)]);
        assert!(s.is_decreasing(0.0));
        assert!((s.total_drop() - 25.0 / 45.0).abs() < 1e-12);
        let bumpy = Series::from_points("t", &[(0.0, 10.0), (1.0, 12.0)]);
        assert!(!bumpy.is_decreasing(0.0));
        assert!(bumpy.is_decreasing(3.0));
    }

    #[test]
    fn totals_accumulate_plans() {
        let mut t = Totals::default();
        let plan = MigrationPlan {
            moves: vec![Move {
                vm: VmId(0),
                from: HostId(0),
                to: HostId(1),
                cost: 110.0,
            }],
            total_cost: 110.0,
            search_space: 40,
            rejected: 2,
            unplaced: vec![],
        };
        t.add(&plan);
        t.add(&plan);
        assert_eq!(t.moves, 2);
        assert_eq!(t.cost, 220.0);
        assert_eq!(t.search_space, 80);
        assert_eq!(t.rejected, 4);
    }

    #[test]
    fn ratio_point_bounds() {
        let good = RatioPoint::new(2, 4.0, 1.5);
        assert!((good.bound - 4.0).abs() < 1e-12);
        assert!(good.within_bound());
        let bad = RatioPoint::new(1, 6.0, 1.0);
        assert!(!bad.within_bound());
        // zero optimum degenerates to ratio 1
        assert_eq!(RatioPoint::new(1, 5.0, 0.0).ratio, 1.0);
    }

    #[test]
    fn empty_series_has_zero_drop() {
        let s = Series::from_points("e", &[]);
        assert_eq!(s.total_drop(), 0.0);
        assert!(s.is_decreasing(0.0));
    }
}

//! The centralized (global) manager baseline of Sec. VI-B.
//!
//! Fig. 11/13 compare Sheriff's regional migration cost against a "global
//! optimal centralized manager"; Fig. 12/14 compare search spaces. The
//! centralized manager sees every alerting VM in the network at once and
//! considers *every* host as a destination — one global minimum-weight
//! matching over the same Eqn. 1 costs. Its search space is |F| × |all
//! hosts|, against Sheriff's |F_i| × |region_i hosts| per shim.
//!
//! It also exposes the Sec. V-A k-median pipeline: choose `k` destination
//! ToRs for the alerting source ToRs by local search (Alg. 5) over the
//! collapsed metric `Cost(v_i, v_p)`.

use crate::kmedian::{greedy_init, local_search_from_obs, KMedianInstance, KMedianSolution};
use crate::vmmigration::{vmmigration_scoped_obs, MigrationContext, MigrationPlan};
use dcn_topology::{RackId, VmId};
use sheriff_obs::{EventSink, NullSink};

/// Run the centralized manager over all alerting candidates: one global
/// VMMIGRATION whose target region is the entire rack set.
#[cfg(feature = "legacy")]
#[deprecated(
    since = "0.1.0",
    note = "use `CentralizedRuntime` via the `Runtime` trait, or `centralized_migration_obs`"
)]
pub fn centralized_migration(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    max_rounds: usize,
) -> MigrationPlan {
    centralized_migration_obs(ctx, candidates, max_rounds, &mut NullSink)
}

/// The centralized manager with an [`EventSink`] observing every
/// REQUEST/verdict and the final plan summary (the deprecated
/// `centralized_migration` wrapper is this with a [`NullSink`], behind
/// the `legacy` feature).
pub fn centralized_migration_obs<S: EventSink + ?Sized>(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    max_rounds: usize,
    sink: &mut S,
) -> MigrationPlan {
    let all_racks: Vec<RackId> = (0..ctx.inventory.rack_count())
        .map(RackId::from_index)
        .collect();
    vmmigration_scoped_obs(ctx, candidates, &all_racks, max_rounds, true, sink)
}

/// Like [`centralized_migration_obs`] (with a [`NullSink`]) but
/// processes candidates in chunks of
/// `chunk` rows per matching call. The Hungarian algorithm is
/// O(rows² · cols); at data-center scale (thousands of candidates ×
/// tens of thousands of hosts) one global matrix is intractable, and with
/// destination slots plentiful the chunked assignment's cost is within
/// noise of the monolithic one. Search-space accounting is identical
/// (Σ |chunk| × |hosts| = |F| × |hosts|).
pub fn centralized_migration_chunked(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    chunk: usize,
    max_rounds: usize,
) -> MigrationPlan {
    centralized_migration_chunked_obs(ctx, candidates, chunk, max_rounds, &mut NullSink)
}

/// [`centralized_migration_chunked`] with an [`EventSink`]: each chunk
/// contributes its own `plan_computed` summary.
pub fn centralized_migration_chunked_obs<S: EventSink + ?Sized>(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    chunk: usize,
    max_rounds: usize,
    sink: &mut S,
) -> MigrationPlan {
    assert!(chunk >= 1, "chunk must be positive");
    let mut plan = MigrationPlan::default();
    for part in candidates.chunks(chunk) {
        plan.absorb(centralized_migration_obs(ctx, part, max_rounds, sink));
    }
    plan
}

/// The Sec. V-A transformation: given alerting source racks and the full
/// rack-to-rack cost matrix, pick `k` destination ToRs minimising total
/// connection cost with the `p`-swap local search.
///
/// `rack_cost[i][j]` must be `Cost(v_i, v_j)` per Eqn. 18 (e.g. from
/// [`dcn_sim::RackMetric::migration_cost`] with a reference VM size).
pub fn destination_tors(
    rack_cost: &[Vec<f64>],
    sources: &[RackId],
    k: usize,
    p: usize,
) -> KMedianSolution {
    destination_tors_obs(rack_cost, sources, k, p, &mut NullSink)
}

/// [`destination_tors`] with an [`EventSink`] observing the Alg. 5
/// descent: each accepted swap emits a `swap_accepted` event.
pub fn destination_tors_obs<S: EventSink + ?Sized>(
    rack_cost: &[Vec<f64>],
    sources: &[RackId],
    k: usize,
    p: usize,
    sink: &mut S,
) -> KMedianSolution {
    assert!(!sources.is_empty(), "need at least one alerting rack");
    let cost: Vec<Vec<f64>> = sources
        .iter()
        .map(|s| rack_cost[s.index()].clone())
        .collect();
    let inst = KMedianInstance::new(cost, k);
    local_search_from_obs(&inst, greedy_init(&inst), p, 10_000, sink)
}

/// The full Sec. V-A pipeline: collapse rack-to-rack costs (done once in
/// the [`dcn_sim::RackMetric`]), choose `k` destination ToRs for the
/// alerting source racks with the p-swap local search (Alg. 5), then run
/// VMMIGRATION restricted to those racks. Compared to matching against
/// every rack, this caps the candidate-slot set at `k` racks — the
/// centralized manager's scalable variant.
pub fn kmedian_migration(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    k: usize,
    p: usize,
    max_rounds: usize,
) -> (MigrationPlan, KMedianSolution) {
    kmedian_migration_obs(ctx, candidates, k, p, max_rounds, &mut NullSink)
}

/// [`kmedian_migration`] with an [`EventSink`] observing both stages: the
/// Alg. 5 swap descent and the scoped VMMIGRATION's request traffic.
pub fn kmedian_migration_obs<S: EventSink + ?Sized>(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    k: usize,
    p: usize,
    max_rounds: usize,
    sink: &mut S,
) -> (MigrationPlan, KMedianSolution) {
    assert!(!candidates.is_empty(), "need candidates");
    let n = ctx.inventory.rack_count();
    assert!(k >= 1 && k <= n, "k in 1..=racks");

    // source racks of the alerting VMs
    let mut sources: Vec<RackId> = candidates
        .iter()
        .map(|&vm| ctx.placement.rack_of(vm))
        .collect();
    sources.sort_unstable();
    sources.dedup();

    // rack-to-rack Cost(v_i, v_j) at the reference VM size (Eqn. 18)
    let ref_cap = ctx.sim.vm_capacity_max;
    let rack_cost: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let (a, b) = (RackId::from_index(i), RackId::from_index(j));
                    if ctx.metric.reachable(a, b) {
                        ctx.metric.migration_cost(ctx.sim, ref_cap, a, b, 1.0)
                    } else {
                        1e12
                    }
                })
                .collect()
        })
        .collect();

    let solution = destination_tors_obs(&rack_cost, &sources, k, p, sink);
    let dest_racks: Vec<RackId> = solution
        .open
        .iter()
        .map(|&f| RackId::from_index(f))
        .collect();
    let plan = vmmigration_scoped_obs(ctx, candidates, &dest_racks, max_rounds, false, sink);
    (plan, solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::{Cluster, ClusterConfig};
    use dcn_sim::{RackMetric, SimConfig};
    use dcn_topology::fattree::{self, FatTreeConfig};

    fn cluster(seed: u64) -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        // weight 0: optimise the literal Eqn. 1 objective so the
        // centralized manager's superset of destinations can only help
        let sim = SimConfig {
            load_balance_weight: 0.0,
            ..SimConfig::paper()
        };
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 3.0,
                seed,
                ..ClusterConfig::default()
            },
            sim,
        )
    }

    fn alerting_vms(c: &Cluster, fraction: f64) -> Vec<VmId> {
        c.fraction_alerts(fraction, 0)
            .into_iter()
            .filter_map(|a| match a.source {
                dcn_sim::AlertSource::Host(h) => c
                    .placement
                    .vms_on(h)
                    .iter()
                    .copied()
                    .find(|&vm| !c.placement.spec(vm).delay_sensitive),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn centralized_cost_at_most_regional() {
        // the centralized manager optimises over a superset of Sheriff's
        // destinations, so with identical candidates its matching cost per
        // committed move cannot be worse
        let mut c1 = cluster(5);
        let mut c2 = cluster(5);
        let metric = RackMetric::build(&c1.dcn, &c1.sim);
        let cands = alerting_vms(&c1, 0.1);
        assert!(!cands.is_empty());

        let central = {
            let mut ctx = MigrationContext {
                placement: &mut c1.placement,
                inventory: &c1.dcn.inventory,
                deps: &c1.deps,
                metric: &metric,
                sim: &c1.sim,
            };
            centralized_migration_obs(&mut ctx, &cands, 5, &mut NullSink)
        };
        let regional = {
            let region = c2.dcn.neighbor_racks(c2.placement.rack_of(cands[0]), 2);
            let mut ctx = MigrationContext {
                placement: &mut c2.placement,
                inventory: &c2.dcn.inventory,
                deps: &c2.deps,
                metric: &metric,
                sim: &c2.sim,
            };
            crate::vmmigration::vmmigration(&mut ctx, &cands, &region, 5)
        };
        assert!(central.moves.len() >= regional.moves.len());
        if central.moves.len() == regional.moves.len() && !central.moves.is_empty() {
            assert!(central.total_cost <= regional.total_cost + 1e-9);
        }
    }

    #[test]
    fn centralized_search_space_larger() {
        let mut c1 = cluster(6);
        let mut c2 = cluster(6);
        let metric = RackMetric::build(&c1.dcn, &c1.sim);
        let cands = alerting_vms(&c1, 0.1);
        let central = {
            let mut ctx = MigrationContext {
                placement: &mut c1.placement,
                inventory: &c1.dcn.inventory,
                deps: &c1.deps,
                metric: &metric,
                sim: &c1.sim,
            };
            centralized_migration_obs(&mut ctx, &cands, 1, &mut NullSink)
        };
        let regional = {
            let region = c2.dcn.neighbor_racks(c2.placement.rack_of(cands[0]), 2);
            let mut ctx = MigrationContext {
                placement: &mut c2.placement,
                inventory: &c2.dcn.inventory,
                deps: &c2.deps,
                metric: &metric,
                sim: &c2.sim,
            };
            crate::vmmigration::vmmigration(&mut ctx, &cands, &region, 1)
        };
        assert!(
            central.search_space > regional.search_space,
            "central {} !> regional {}",
            central.search_space,
            regional.search_space
        );
    }

    #[test]
    fn kmedian_pipeline_places_candidates_in_k_racks() {
        let mut c = cluster(8);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let cands = alerting_vms(&c, 0.15);
        assert!(!cands.is_empty());
        let k = 3;
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let (plan, solution) = kmedian_migration(&mut ctx, &cands, k, 2, 5);
        assert_eq!(solution.open.len(), k);
        // every committed move landed in one of the k chosen racks
        let dest: std::collections::HashSet<RackId> = solution
            .open
            .iter()
            .map(|&f| RackId::from_index(f))
            .collect();
        for m in &plan.moves {
            assert!(dest.contains(&c.placement.rack_of_host(m.to)));
        }
        assert!(!plan.moves.is_empty());
    }

    #[test]
    fn kmedian_pipeline_search_space_below_full_central() {
        let mut c1 = cluster(9);
        let mut c2 = cluster(9);
        let metric = RackMetric::build(&c1.dcn, &c1.sim);
        let cands = alerting_vms(&c1, 0.15);
        let (km_plan, _) = {
            let mut ctx = MigrationContext {
                placement: &mut c1.placement,
                inventory: &c1.dcn.inventory,
                deps: &c1.deps,
                metric: &metric,
                sim: &c1.sim,
            };
            kmedian_migration(&mut ctx, &cands, 2, 2, 1)
        };
        let full = {
            let mut ctx = MigrationContext {
                placement: &mut c2.placement,
                inventory: &c2.dcn.inventory,
                deps: &c2.deps,
                metric: &metric,
                sim: &c2.sim,
            };
            centralized_migration_obs(&mut ctx, &cands, 1, &mut NullSink)
        };
        assert!(
            km_plan.search_space < full.search_space,
            "k-median restriction must shrink the matching: {} !< {}",
            km_plan.search_space,
            full.search_space
        );
    }

    #[test]
    fn destination_tors_picks_k_cheap_racks() {
        let c = cluster(7);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let n = c.dcn.rack_count();
        let ref_cap = c.sim.vm_capacity_max;
        let rack_cost: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        metric.migration_cost(
                            &c.sim,
                            ref_cap,
                            RackId::from_index(i),
                            RackId::from_index(j),
                            1.0,
                        )
                    })
                    .collect()
            })
            .collect();
        let sources = vec![RackId(0), RackId(1)];
        let sol = destination_tors(&rack_cost, &sources, 2, 2);
        assert_eq!(sol.open.len(), 2);
        assert!(sol.cost.is_finite());
        // with k = sources and same-pod racks available, the chosen ToRs
        // should be pod-local (cheap)
        let max_cost_per_source = sol.cost / sources.len() as f64;
        let cross_pod = rack_cost[0][4];
        assert!(max_cost_per_source <= cross_pod);
    }
}

//! Per-shim write-ahead intent journal for crash-consistent migrations.
//!
//! The destination shim records every accepted PREPARE as a durable
//! intent *before* answering, then marks it `Committed` or `Aborted` when
//! the second phase resolves. A shim that crashes mid-transaction replays
//! the journal on recovery: committed transfers are re-ACKed (the ACK may
//! have died with the shim), prepares whose lease has lapsed are aborted
//! (rolled back, or committed forward when rollback is impossible), and
//! in-lease prepares are kept alive for the source's retransmitted
//! COMMIT. The journal is the ground truth the invariant auditor checks
//! placements against.

use crate::protocol::ReqId;
use dcn_topology::{DependencyGraph, HostId, Placement, VmId};
use std::collections::BTreeMap;

/// Lifecycle state of one journalled migration transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Intent recorded and placement mutated; awaiting COMMIT or ABORT.
    Prepared,
    /// Second phase confirmed the move; the placement change is final.
    Committed,
    /// The move was undone (or forcibly finished — see `forwarded`).
    Aborted,
}

/// One journal entry: the intent of a migration plus its 2PC state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxnRecord {
    /// VM the transaction moves.
    pub vm: VmId,
    /// Host the VM came from (rollback target).
    pub src: HostId,
    /// Host the PREPARE moved it to.
    pub dst: HostId,
    /// Virtual time past which an un-committed prepare is orphaned.
    pub lease: u64,
    /// Source rack's epoch the PREPARE was journalled under; a COMMIT
    /// carrying an older epoch is fenced, and re-integration aborts
    /// prepares whose source rack's epoch has since advanced.
    pub epoch: u64,
    /// Where the transaction is in its lifecycle.
    pub state: TxnState,
}

/// What happened to a prepared transaction when it was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortOutcome {
    /// The VM was migrated back to its source host.
    RolledBack,
    /// Rollback was impossible (source host offline, capacity reclaimed
    /// or a dependent VM landed there); the move was committed forward
    /// instead — never a lost or duplicated VM.
    Forwarded,
    /// The id was unknown or already resolved; nothing changed.
    NotPrepared,
}

/// Counters describing one journal replay after a crash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal entries walked during replay.
    pub replayed: usize,
    /// Committed transactions whose ACK must be retransmitted, in
    /// deterministic (req-id) order.
    pub reacks: Vec<ReqId>,
    /// Prepares aborted because their lease lapsed while down.
    pub lease_aborts: Vec<(ReqId, VmId)>,
    /// Prepares aborted because their source rack's epoch advanced while
    /// the shim was down (the source was taken over).
    pub epoch_aborts: Vec<(ReqId, VmId)>,
    /// Aborts that had to commit forward instead of rolling back.
    pub forwarded: usize,
}

/// Write-ahead intent journal of one rack's delegation node.
#[derive(Debug, Clone, Default)]
pub struct IntentJournal {
    entries: BTreeMap<ReqId, TxnRecord>,
    forwarded: usize,
}

impl IntentJournal {
    /// Fresh, empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the intent of an accepted PREPARE. The placement mutation
    /// has already happened; this makes it survivable. `epoch` is the
    /// source rack's epoch the PREPARE was sent under.
    pub fn prepare(
        &mut self,
        id: ReqId,
        vm: VmId,
        src: HostId,
        dst: HostId,
        lease: u64,
        epoch: u64,
    ) {
        self.entries.insert(
            id,
            TxnRecord {
                vm,
                src,
                dst,
                lease,
                epoch,
                state: TxnState::Prepared,
            },
        );
    }

    /// Look up a transaction's current state.
    pub fn state(&self, id: ReqId) -> Option<TxnState> {
        self.entries.get(&id).map(|e| e.state)
    }

    /// Look up a transaction's full record.
    pub fn get(&self, id: ReqId) -> Option<&TxnRecord> {
        self.entries.get(&id)
    }

    /// Push a prepared transaction's lease out to `until` (used while a
    /// committed migration's pre-copy streams: the transfer scheduler
    /// owns its fate, so the lease sweep must not abort it mid-flight).
    /// Returns `false` if the id is unknown or not in `Prepared`.
    pub fn extend_lease(&mut self, id: ReqId, until: u64) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) if e.state == TxnState::Prepared => {
                e.lease = e.lease.max(until);
                true
            }
            _ => false,
        }
    }

    /// Finish a prepared transaction. Returns `false` if the id is
    /// unknown or the transaction was not in `Prepared`.
    pub fn commit(&mut self, id: ReqId) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) if e.state == TxnState::Prepared => {
                e.state = TxnState::Committed;
                true
            }
            _ => false,
        }
    }

    /// Abort a prepared transaction, undoing its placement mutation.
    /// Rollback re-migrates the VM to its recorded source; when that is
    /// impossible (offline source, reclaimed capacity, new dependency
    /// conflict) the transaction is committed forward instead, which
    /// keeps the placement consistent at the cost of an unplanned move.
    pub fn abort(
        &mut self,
        placement: &mut Placement,
        deps: &DependencyGraph,
        id: ReqId,
    ) -> AbortOutcome {
        let Some(e) = self.entries.get_mut(&id) else {
            return AbortOutcome::NotPrepared;
        };
        if e.state != TxnState::Prepared {
            return AbortOutcome::NotPrepared;
        }
        // only undo a mutation that is still in effect: if a later
        // transaction already moved the VM off our destination, the
        // prepare was superseded and there is nothing left to undo
        if placement.host_of(e.vm) != e.dst {
            e.state = TxnState::Aborted;
            return AbortOutcome::RolledBack;
        }
        let can_roll_back = !deps.conflicts_on_host(e.vm, e.src, placement)
            && placement.migrate(e.vm, e.src).is_ok();
        if can_roll_back {
            e.state = TxnState::Aborted;
            AbortOutcome::RolledBack
        } else {
            e.state = TxnState::Committed;
            self.forwarded += 1;
            AbortOutcome::Forwarded
        }
    }

    /// Abort every prepared transaction whose lease is `<= now`.
    /// Returns the aborted `(req_id, vm)` pairs in req-id order.
    pub fn expire_leases(
        &mut self,
        placement: &mut Placement,
        deps: &DependencyGraph,
        now: u64,
    ) -> Vec<(ReqId, VmId)> {
        let expired: Vec<(ReqId, VmId)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.state == TxnState::Prepared && e.lease <= now)
            .map(|(&id, e)| (id, e.vm))
            .collect();
        for &(id, _) in &expired {
            self.abort(placement, deps, id);
        }
        expired
    }

    /// Replay the journal after a crash: re-ACK committed transfers,
    /// abort prepares whose lease lapsed while the shim was down, and
    /// keep in-lease prepares alive for the retransmitted COMMIT.
    pub fn recover(
        &mut self,
        placement: &mut Placement,
        deps: &DependencyGraph,
        now: u64,
    ) -> RecoveryReport {
        self.recover_with_epochs(placement, deps, now, &BTreeMap::new())
    }

    /// Epoch-aware [`IntentJournal::recover`]: in addition to the lease
    /// sweep, every prepare journalled under an epoch older than its
    /// source rack's current epoch (per `epochs`; racks absent from the
    /// map are at epoch 0) is aborted even while its lease is live — the
    /// source shim was taken over, so the COMMIT it owed will never
    /// legitimately arrive. Rollback when possible, commit-forward when
    /// not: the re-integration choice is made per entry, never losing or
    /// duplicating a VM.
    pub fn recover_with_epochs(
        &mut self,
        placement: &mut Placement,
        deps: &DependencyGraph,
        now: u64,
        epochs: &BTreeMap<dcn_topology::RackId, u64>,
    ) -> RecoveryReport {
        let mut report = RecoveryReport {
            replayed: self.entries.len(),
            ..RecoveryReport::default()
        };
        let forwarded_before = self.forwarded;
        report.reacks = self
            .entries
            .iter()
            .filter(|(_, e)| e.state == TxnState::Committed)
            .map(|(&id, _)| id)
            .collect();
        let stale: Vec<(ReqId, VmId)> = self
            .entries
            .iter()
            .filter(|(id, e)| {
                e.state == TxnState::Prepared
                    && e.epoch < epochs.get(&id.source()).copied().unwrap_or(0)
            })
            .map(|(&id, e)| (id, e.vm))
            .collect();
        for &(id, _) in &stale {
            self.abort(placement, deps, id);
        }
        report.epoch_aborts = stale;
        report.lease_aborts = self.expire_leases(placement, deps, now);
        report.forwarded = self.forwarded - forwarded_before;
        report
    }

    /// The earliest lease deadline among transactions still in
    /// `Prepared`, or `None` when nothing is in-lease. An event loop that
    /// wakes [`IntentJournal::expire_leases`] at this tick aborts the
    /// same orphans as one sweeping every tick (expiry fires when
    /// `lease <= now` and leases only change via prepare/commit/abort).
    pub fn next_lease(&self) -> Option<u64> {
        self.entries
            .values()
            .filter(|e| e.state == TxnState::Prepared)
            .map(|e| e.lease)
            .min()
    }

    /// Iterate all records in req-id order (the auditor's view).
    pub fn records(&self) -> impl Iterator<Item = (ReqId, &TxnRecord)> + '_ {
        self.entries.iter().map(|(&id, e)| (id, e))
    }

    /// Transactions still in `Prepared` — zero once a round settles.
    pub fn pending(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.state == TxnState::Prepared)
            .count()
    }

    /// Transactions that finished in `Committed`.
    pub fn committed(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.state == TxnState::Committed)
            .count()
    }

    /// Transactions that finished in `Aborted`.
    pub fn aborted(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.state == TxnState::Aborted)
            .count()
    }

    /// Lease-aborts that committed forward because rollback failed.
    pub fn forwarded(&self) -> usize {
        self.forwarded
    }

    /// Total transactions ever journalled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been journalled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::{Inventory, RackId, VmSpec};

    fn small() -> (Placement, DependencyGraph) {
        let mut inv = Inventory::new();
        inv.add_rack(3, 10.0, 100.0);
        let mut p = Placement::new(&inv);
        let s = VmSpec {
            id: p.next_vm_id(),
            capacity: 6.0,
            value: 1.0,
            delay_sensitive: false,
        };
        p.add_vm(s, HostId(0)).unwrap();
        (p, DependencyGraph::new(1))
    }

    fn id(seq: u32) -> ReqId {
        ReqId::new(RackId(0), seq)
    }

    #[test]
    fn prepare_commit_lifecycle() {
        let mut j = IntentJournal::new();
        j.prepare(id(0), VmId(0), HostId(0), HostId(1), 10, 0);
        assert_eq!(j.state(id(0)), Some(TxnState::Prepared));
        assert_eq!(j.pending(), 1);
        assert!(j.commit(id(0)));
        assert_eq!(j.state(id(0)), Some(TxnState::Committed));
        assert!(!j.commit(id(0)), "double commit is a no-op");
        assert_eq!(j.committed(), 1);
        assert_eq!(j.pending(), 0);
    }

    #[test]
    fn abort_rolls_the_vm_back() {
        let (mut p, deps) = small();
        p.migrate(VmId(0), HostId(1)).unwrap(); // the PREPARE's mutation
        let mut j = IntentJournal::new();
        j.prepare(id(0), VmId(0), HostId(0), HostId(1), 10, 0);
        assert_eq!(j.abort(&mut p, &deps, id(0)), AbortOutcome::RolledBack);
        assert_eq!(p.host_of(VmId(0)), HostId(0));
        assert_eq!(j.state(id(0)), Some(TxnState::Aborted));
        assert_eq!(j.abort(&mut p, &deps, id(0)), AbortOutcome::NotPrepared);
    }

    #[test]
    fn abort_commits_forward_when_source_is_offline() {
        let (mut p, deps) = small();
        p.migrate(VmId(0), HostId(1)).unwrap();
        p.set_host_online(HostId(0), false); // rollback target dies
        let mut j = IntentJournal::new();
        j.prepare(id(0), VmId(0), HostId(0), HostId(1), 10, 0);
        assert_eq!(j.abort(&mut p, &deps, id(0)), AbortOutcome::Forwarded);
        assert_eq!(p.host_of(VmId(0)), HostId(1), "VM stays put, never lost");
        assert_eq!(j.state(id(0)), Some(TxnState::Committed));
        assert_eq!(j.forwarded(), 1);
    }

    #[test]
    fn recovery_reacks_committed_and_aborts_expired() {
        let (mut p, deps) = small();
        p.migrate(VmId(0), HostId(1)).unwrap();
        let mut j = IntentJournal::new();
        // committed transfer whose ACK may have been lost
        j.prepare(id(0), VmId(0), HostId(0), HostId(1), 5, 0);
        j.commit(id(0));
        // orphaned prepare: lease 8 lapsed while the shim was down
        p.migrate(VmId(0), HostId(2)).unwrap();
        j.prepare(id(1), VmId(0), HostId(1), HostId(2), 8, 0);
        let rep = j.recover(&mut p, &deps, 20);
        assert_eq!(rep.replayed, 2);
        assert_eq!(rep.reacks, vec![id(0)]);
        assert_eq!(rep.lease_aborts, vec![(id(1), VmId(0))]);
        assert_eq!(rep.forwarded, 0);
        assert_eq!(p.host_of(VmId(0)), HostId(1), "orphan rolled back");
        assert_eq!(j.pending(), 0, "no transaction left prepared");
    }

    #[test]
    fn reintegration_aborts_prepares_from_a_superseded_epoch() {
        let (mut p, deps) = small();
        p.migrate(VmId(0), HostId(1)).unwrap();
        let mut j = IntentJournal::new();
        // prepared under epoch 0, lease far in the future
        j.prepare(id(0), VmId(0), HostId(0), HostId(1), 100, 0);
        // rack 0 was taken over: its epoch is now 1
        let epochs = BTreeMap::from([(RackId(0), 1u64)]);
        let rep = j.recover_with_epochs(&mut p, &deps, 10, &epochs);
        assert_eq!(rep.epoch_aborts, vec![(id(0), VmId(0))]);
        assert_eq!(p.host_of(VmId(0)), HostId(0), "stale prepare rolled back");
        assert_eq!(j.state(id(0)), Some(TxnState::Aborted));
        // same-epoch prepares are untouched
        p.migrate(VmId(0), HostId(1)).unwrap();
        j.prepare(id(1), VmId(0), HostId(0), HostId(1), 100, 1);
        let rep = j.recover_with_epochs(&mut p, &deps, 10, &epochs);
        assert!(rep.epoch_aborts.is_empty());
        assert_eq!(j.state(id(1)), Some(TxnState::Prepared));
    }

    #[test]
    fn in_lease_prepare_survives_recovery() {
        let (mut p, deps) = small();
        p.migrate(VmId(0), HostId(1)).unwrap();
        let mut j = IntentJournal::new();
        j.prepare(id(0), VmId(0), HostId(0), HostId(1), 100, 0);
        let rep = j.recover(&mut p, &deps, 20);
        assert!(rep.lease_aborts.is_empty());
        assert_eq!(j.state(id(0)), Some(TxnState::Prepared));
        assert_eq!(p.host_of(VmId(0)), HostId(1));
    }
}

//! FLOWREROUTE — congestion-avoiding flow rerouting (Sec. III-B case 3).
//!
//! "If v_i detects alerts from outer switch s_j, it will figure out the
//! conflict flows from a set of local VM's. Then v_i should reroute
//! portion of flows to their destinations without passing through hot
//! switches." Rerouting is cheaper and faster than live migration, so
//! shims apply it before VMMIGRATION.

use dcn_sim::flows::{shortest_route, FlowNetwork};
use dcn_topology::{Dcn, NodeId, Placement, SwitchId};

/// Outcome of a FLOWREROUTE invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RerouteReport {
    /// Flows successfully moved off the hot switch.
    pub rerouted: usize,
    /// Flows that had no alternative path.
    pub stuck: usize,
    /// Delay-sensitive flows that were left untouched.
    pub skipped_delay_sensitive: usize,
}

/// Reroute the given flows (indices into `flows`) away from `hot`.
/// Delay-sensitive flows are never disturbed (Alg. 2 line 1 applies to
/// reroute victims too). Returns per-category counts.
pub fn flow_reroute(
    dcn: &Dcn,
    placement: &Placement,
    flows: &mut FlowNetwork,
    hot: SwitchId,
    flow_ids: &[usize],
) -> RerouteReport {
    let mut report = RerouteReport::default();
    let Some(hot_node) = dcn.graph.node_idx(NodeId::Switch(hot)) else {
        return report;
    };
    for &f in flow_ids {
        let flow = &flows.flows()[f];
        if flow.delay_sensitive {
            report.skipped_delay_sensitive += 1;
            continue;
        }
        let src = dcn.rack_node(placement.rack_of(flow.src));
        let dst = dcn.rack_node(placement.rack_of(flow.dst));
        if src == dst {
            continue; // intra-rack flow never touches a switch
        }
        match shortest_route(dcn, src, dst, &[hot_node]) {
            Some(route) => {
                flows.reroute(f, route);
                report.rerouted += 1;
            }
            None => report.stuck += 1,
        }
    }
    report
}

/// Multipath-aware FLOWREROUTE: among up to `k` loopless shortest paths
/// (Yen's algorithm) that avoid the hot switch, choose the one that
/// minimises the worst post-reroute link utilisation. On ECMP fabrics
/// like Fat-Tree this spreads detours instead of stacking every rerouted
/// flow onto the same alternative.
pub fn flow_reroute_balanced(
    dcn: &Dcn,
    placement: &Placement,
    flows: &mut FlowNetwork,
    hot: SwitchId,
    flow_ids: &[usize],
    k: usize,
) -> RerouteReport {
    let mut report = RerouteReport::default();
    let Some(hot_node) = dcn.graph.node_idx(NodeId::Switch(hot)) else {
        return report;
    };
    for &f in flow_ids {
        let flow = &flows.flows()[f];
        if flow.delay_sensitive {
            report.skipped_delay_sensitive += 1;
            continue;
        }
        let rate = flow.rate;
        let src = dcn.rack_node(placement.rack_of(flow.src));
        let dst = dcn.rack_node(placement.rack_of(flow.dst));
        if src == dst {
            continue;
        }
        let candidates = dcn_topology::ksp::k_shortest_paths(
            &dcn.graph,
            src,
            dst,
            k,
            dcn_topology::path::distance_cost,
        );
        // pick the candidate avoiding the hot switch with the lowest
        // worst-link utilisation after carrying this flow
        let mut best: Option<(Vec<dcn_topology::EdgeIdx>, f64)> = None;
        for cand in &candidates {
            if cand.nodes.contains(&hot_node) {
                continue;
            }
            let edges = cand.edges(&dcn.graph);
            let worst = edges
                .iter()
                .map(|&e| (flows.load(e) + rate) / dcn.graph.link(e).capacity)
                .fold(0.0f64, f64::max);
            if best.as_ref().is_none_or(|(_, b)| worst < *b) {
                best = Some((edges, worst));
            }
        }
        match best {
            Some((route, _)) => {
                flows.reroute(f, route);
                report.rerouted += 1;
            }
            None => report.stuck += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::flows::Flow;
    use dcn_topology::bcube::{self, BCubeConfig};
    use dcn_topology::fattree::{self, FatTreeConfig};
    use dcn_topology::{HostId, VmId, VmSpec};

    fn setup() -> (Dcn, Placement, FlowNetwork) {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut p = Placement::new(&dcn.inventory);
        for h in [0usize, 2] {
            let s = VmSpec {
                id: p.next_vm_id(),
                capacity: 5.0,
                value: 1.0,
                delay_sensitive: false,
            };
            p.add_vm(s, HostId::from_index(h)).unwrap();
        }
        let flows = FlowNetwork::route(
            &dcn,
            &p,
            vec![Flow {
                src: VmId(0),
                dst: VmId(1),
                rate: 0.95,
                delay_sensitive: false,
            }],
        );
        (dcn, p, flows)
    }

    #[test]
    fn reroute_avoids_hot_switch() {
        let (dcn, p, mut flows) = setup();
        let hot = flows.congested_switches(&dcn, 0.9);
        assert!(!hot.is_empty());
        let (sw, _) = hot[0];
        let ids = flows.flows_through_switch(&dcn, sw);
        let report = flow_reroute(&dcn, &p, &mut flows, sw, &ids);
        assert_eq!(report.rerouted, ids.len());
        assert!(flows.flows_through_switch(&dcn, sw).is_empty());
    }

    #[test]
    fn delay_sensitive_flows_skipped() {
        let (dcn, p, _) = setup();
        let mut flows = FlowNetwork::route(
            &dcn,
            &p,
            vec![Flow {
                src: VmId(0),
                dst: VmId(1),
                rate: 0.95,
                delay_sensitive: true,
            }],
        );
        let hot = flows.congested_switches(&dcn, 0.9);
        let (sw, _) = hot[0];
        let ids = flows.flows_through_switch(&dcn, sw);
        let report = flow_reroute(&dcn, &p, &mut flows, sw, &ids);
        assert_eq!(report.rerouted, 0);
        assert_eq!(report.skipped_delay_sensitive, 1);
        // route untouched
        assert!(!flows.flows_through_switch(&dcn, sw).is_empty());
    }

    #[test]
    fn balanced_reroute_spreads_across_paths() {
        // two parallel hot flows between the same pod pair: the balanced
        // reroute should not stack both onto one alternative path
        let dcn = fattree::build(&FatTreeConfig::paper(8));
        let mut p = Placement::new(&dcn.inventory);
        for h in [0usize, 4] {
            for _ in 0..2 {
                let s = VmSpec {
                    id: p.next_vm_id(),
                    capacity: 5.0,
                    value: 1.0,
                    delay_sensitive: false,
                };
                p.add_vm(s, HostId::from_index(h)).unwrap();
            }
        }
        let mk = |src, dst| Flow {
            src,
            dst,
            rate: 0.45,
            delay_sensitive: false,
        };
        let mut flows =
            FlowNetwork::route(&dcn, &p, vec![mk(VmId(0), VmId(2)), mk(VmId(1), VmId(3))]);
        // both flows share the single distance-shortest route initially
        assert_eq!(flows.route_of(0), flows.route_of(1));
        let hot_sw = {
            let (a, b) = dcn.graph.endpoints(flows.route_of(0)[0]);
            let node = if dcn.graph.node_id(a).is_rack() { b } else { a };
            dcn.graph.node_id(node).as_switch().unwrap()
        };
        let report = flow_reroute_balanced(&dcn, &p, &mut flows, hot_sw, &[0, 1], 6);
        assert_eq!(report.rerouted, 2);
        // after balancing, the two flows take different first hops
        assert_ne!(flows.route_of(0)[0], flows.route_of(1)[0]);
        // and neither passes the hot switch
        assert!(flows.flows_through_switch(&dcn, hot_sw).is_empty());
    }

    #[test]
    fn balanced_reroute_reduces_worst_link_load() {
        let (dcn, p, mut flows) = setup();
        let hot = flows.congested_switches(&dcn, 0.9);
        let (sw, _) = hot[0];
        let ids = flows.flows_through_switch(&dcn, sw);
        let worst_before: f64 = (0..dcn.graph.edge_count())
            .map(|e| flows.load(e) / dcn.graph.link(e).capacity)
            .fold(0.0, f64::max);
        let report = flow_reroute_balanced(&dcn, &p, &mut flows, sw, &ids, 4);
        assert_eq!(report.rerouted, ids.len());
        let worst_after: f64 = (0..dcn.graph.edge_count())
            .map(|e| flows.load(e) / dcn.graph.link(e).capacity)
            .fold(0.0, f64::max);
        assert!(worst_after <= worst_before + 1e-9);
    }

    #[test]
    fn stuck_when_no_alternative_exists() {
        // BCube(2,0) is a single switch connecting two servers: no detour
        let dcn = bcube::build(&BCubeConfig {
            k: 0,
            ..BCubeConfig::paper(2)
        });
        let mut p = Placement::new(&dcn.inventory);
        for h in [0usize, 2] {
            let s = VmSpec {
                id: p.next_vm_id(),
                capacity: 5.0,
                value: 1.0,
                delay_sensitive: false,
            };
            p.add_vm(s, HostId::from_index(h)).unwrap();
        }
        let mut flows = FlowNetwork::route(
            &dcn,
            &p,
            vec![Flow {
                src: VmId(0),
                dst: VmId(1),
                rate: 0.95,
                delay_sensitive: false,
            }],
        );
        let sw = SwitchId(0);
        let ids = flows.flows_through_switch(&dcn, sw);
        assert_eq!(ids.len(), 1);
        let report = flow_reroute(&dcn, &p, &mut flows, sw, &ids);
        assert_eq!(report.stuck, 1);
        assert_eq!(report.rerouted, 0);
    }
}

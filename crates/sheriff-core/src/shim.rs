//! The Sheriff controller: one shim per rack, each dominating its local
//! region (Sec. II-B). This module provides the deterministic sequential
//! runtime used by the experiment harness; `distributed` provides the
//! threaded runtime with real message passing.

use crate::alert_mgmt::{pre_alert_management, ShimOutcome};
use crate::vmmigration::{MigrationContext, MigrationPlan};
use dcn_sim::engine::Cluster;
use dcn_sim::flows::FlowNetwork;
use dcn_sim::{Alert, RackMetric};
use dcn_topology::{RackId, VmId};
use serde::{Deserialize, Serialize};

/// Aggregated result of one full management round across all shims.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoundReport {
    /// Merged migration plan of every shim.
    pub plan: MigrationPlan,
    /// Host-utilisation std-dev before the round (Fig. 9/10 metric).
    pub stddev_before: f64,
    /// Std-dev after the round.
    pub stddev_after: f64,
    /// Shims that had at least one alert to process.
    pub shims_active: usize,
    /// Flows rerouted across all shims.
    pub flows_rerouted: usize,
}

/// The regional Sheriff manager: precomputed dominating regions, one per
/// rack.
#[derive(Debug, Clone)]
pub struct Sheriff {
    regions: Vec<Vec<RackId>>,
    /// VMMIGRATION negotiation retry bound.
    pub max_rounds: usize,
}

impl Sheriff {
    /// Build a Sheriff over the cluster's topology: each shim's region is
    /// the racks within `sim.region_hops` of it.
    pub fn new(cluster: &Cluster) -> Self {
        let regions = (0..cluster.dcn.rack_count())
            .map(|r| {
                cluster
                    .dcn
                    .neighbor_racks(RackId::from_index(r), cluster.sim.region_hops)
            })
            .collect();
        Self {
            regions,
            max_rounds: 5,
        }
    }

    /// The dominating region of a rack.
    pub fn region(&self, rack: RackId) -> &[RackId] {
        &self.regions[rack.index()]
    }

    /// Run one management round: every shim with alerts runs Alg. 1 over
    /// its own alert subset, in rack order (deterministic). `alert_of`
    /// supplies per-VM ALERT values for the PRIORITY function.
    pub fn round(
        &self,
        cluster: &mut Cluster,
        metric: &RackMetric,
        mut flows: Option<&mut FlowNetwork>,
        alerts: &[Alert],
        alert_of: &dyn Fn(VmId) -> f64,
    ) -> RoundReport {
        let mut report = RoundReport {
            stddev_before: cluster.utilization_stddev(),
            ..RoundReport::default()
        };
        // group alert indices by receiving shim
        let mut racks: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        report.shims_active = racks.len();

        for rack in racks {
            let outcome: ShimOutcome = {
                let mut ctx = MigrationContext {
                    placement: &mut cluster.placement,
                    inventory: &cluster.dcn.inventory,
                    deps: &cluster.deps,
                    metric,
                    sim: &cluster.sim,
                };
                pre_alert_management(
                    &mut ctx,
                    &cluster.dcn,
                    flows.as_deref_mut(),
                    rack,
                    &self.regions[rack.index()],
                    alerts,
                    alert_of,
                    self.max_rounds,
                )
            };
            report.flows_rerouted += outcome.reroutes.rerouted;
            report.plan.absorb(outcome.plan);
        }
        report.stddev_after = cluster.utilization_stddev();
        report
    }

    /// Run `rounds` successive rounds with the Fig. 9/10 protocol
    /// (a fixed fraction of VMs alerting per round), returning the std-dev
    /// trajectory including the initial point.
    pub fn balance_trajectory(
        &self,
        cluster: &mut Cluster,
        metric: &RackMetric,
        alert_fraction: f64,
        rounds: usize,
    ) -> (Vec<f64>, MigrationPlan) {
        let mut stddevs = vec![cluster.utilization_stddev()];
        let mut plan = MigrationPlan::default();
        for t in 0..rounds {
            let alerts = cluster.fraction_alerts(alert_fraction, t);
            let utils: Vec<f64> = cluster
                .placement
                .vm_ids()
                .map(|vm| cluster.placement.utilization(cluster.placement.host_of(vm)))
                .collect();
            let r = self.round(cluster, metric, None, &alerts, &|vm| utils[vm.index()]);
            plan.absorb(r.plan);
            stddevs.push(cluster.utilization_stddev());
        }
        (stddevs, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::ClusterConfig;
    use dcn_sim::SimConfig;
    use dcn_topology::bcube::{self, BCubeConfig};
    use dcn_topology::fattree::{self, FatTreeConfig};

    fn fattree_cluster(seed: u64) -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(8));
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 4.0,
                seed,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        )
    }

    #[test]
    fn balancing_reduces_stddev_on_fattree() {
        let mut c = fattree_cluster(1);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let sheriff = Sheriff::new(&c);
        let (traj, plan) = sheriff.balance_trajectory(&mut c, &metric, 0.05, 24);
        assert_eq!(traj.len(), 25);
        assert!(!plan.moves.is_empty());
        let first = traj[0];
        let last = *traj.last().unwrap();
        assert!(
            last < first * 0.6,
            "std-dev should roughly halve over 24 rounds: {first} -> {last}"
        );
    }

    #[test]
    fn balancing_reduces_stddev_on_bcube() {
        let dcn = bcube::build(&BCubeConfig::paper(8));
        let mut c = Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 4.0,
                seed: 2,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        );
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let sheriff = Sheriff::new(&c);
        let (traj, _) = sheriff.balance_trajectory(&mut c, &metric, 0.05, 24);
        assert!(*traj.last().unwrap() < traj[0] * 0.7, "{traj:?}");
    }

    #[test]
    fn round_report_accounts_stddev_change() {
        let mut c = fattree_cluster(3);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let sheriff = Sheriff::new(&c);
        let alerts = c.fraction_alerts(0.05, 0);
        let utils: Vec<f64> = c
            .placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect();
        let r = sheriff.round(&mut c, &metric, None, &alerts, &|vm| utils[vm.index()]);
        assert!(r.shims_active > 0);
        assert!(r.stddev_after <= r.stddev_before);
        assert_eq!(r.stddev_after, c.utilization_stddev());
    }

    #[test]
    fn regions_are_local() {
        let c = fattree_cluster(4);
        let sheriff = Sheriff::new(&c);
        // default region (2 hops) in an 8-pod fat-tree = pod peers only
        let region = sheriff.region(RackId(0));
        assert_eq!(region.len(), 3, "8-pod fat-tree pod has 4 racks");
        assert!(region.len() < c.dcn.rack_count() - 1);
    }

    #[test]
    fn rounds_are_deterministic() {
        let run = |seed| {
            let mut c = fattree_cluster(seed);
            let metric = RackMetric::build(&c.dcn, &c.sim);
            let sheriff = Sheriff::new(&c);
            let (traj, plan) = sheriff.balance_trajectory(&mut c, &metric, 0.05, 5);
            (traj, plan.total_cost)
        };
        assert_eq!(run(9), run(9));
    }
}

//! Pre-alert vs contingency management (Sec. I, "Contingency vs
//! Pre-Control").
//!
//! The paper's motivating claim: a *contingency* manager reacts only
//! after overload is detected, while Sheriff *predicts* the overload and
//! acts a period early, so devices spend less time in the damaging
//! regime. This module runs both strategies over the same time-varying
//! workloads and measures overload exposure — the experiment the paper
//! motivates but never quantifies.

use crate::priority::{priority, Budget};
use crate::vmmigration::{vmmigration, MigrationContext, MigrationPlan};
use dcn_sim::engine::{Cluster, ProfilePredictor};
use dcn_sim::RackMetric;
use dcn_topology::{HostId, RackId, VmId};
use serde::{Deserialize, Serialize};

/// When does a host raise its alert?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertPolicy {
    /// Contingency: alert when the *current* load exceeds the threshold
    /// (the classical react-after-detection scheme, refs \[17\]–\[23\]).
    Reactive,
    /// Sheriff: alert when the *predicted* load at migration-completion
    /// time exceeds the threshold.
    PreAlert,
    /// Perfect foresight: alert on the *actual* future load at
    /// migration-completion time. Upper-bounds what any predictor can
    /// buy; the Reactive→Oracle gap is the value of pre-control itself.
    Oracle,
}

/// Outcome of running one policy over a workload timeline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// Host-steps spent above the overload threshold (lower is better).
    pub overload_steps: usize,
    /// Integral of (load − threshold) over all overloaded host-steps.
    pub overload_integral: f64,
    /// Migrations performed.
    pub migrations: usize,
    /// Total Eqn. 1 migration cost.
    pub migration_cost: f64,
    /// Alerts raised.
    pub alerts: usize,
}

/// Effective (time-varying) load fraction of a host at step `t`: each
/// VM contributes its capacity scaled by its current CPU demand.
pub fn effective_load(cluster: &Cluster, host: HostId, t: usize) -> f64 {
    let used: f64 = cluster
        .placement
        .vms_on(host)
        .iter()
        .map(|&vm| cluster.placement.spec(vm).capacity * cluster.workloads[vm.index()].at(t).cpu)
        .sum();
    used / cluster.placement.host_capacity(host)
}

/// Predicted effective load of a host `h` steps past the history before
/// `t`, using the per-VM profile predictor (k-step-ahead, Sec. IV-B).
pub fn predicted_load<P: ProfilePredictor>(
    cluster: &Cluster,
    predictor: &P,
    host: HostId,
    t: usize,
    horizon: usize,
) -> f64 {
    let used: f64 = cluster
        .placement
        .vms_on(host)
        .iter()
        .map(|&vm| {
            cluster.placement.spec(vm).capacity
                * predictor
                    .predict_ahead(&cluster.workloads[vm.index()], t, horizon)
                    .cpu
        })
        .sum();
    used / cluster.placement.host_capacity(host)
}

/// Run a policy from step `start` to `end` over the cluster's workload
/// timeline, mutating the placement as migrations complete.
///
/// `migration_delay` models the six-stage pre-copy duration (Fig. 2): a
/// migration decided at step `t` only relieves the source host at
/// `t + migration_delay`. The pre-alert policy therefore looks
/// `1 + migration_delay` steps ahead with the k-step forecast of
/// Sec. IV-B — it starts the (slow) migration early enough to finish
/// before the overload materialises, which is exactly the paper's
/// "pre-control" argument. The reactive policy only learns about the
/// overload once it is already paying for it.
///
/// Per step: (1) complete in-flight migrations due now, (2) account
/// overload exposure at the current loads, (3) raise alerts per the
/// policy (hosts with an in-flight migration stay silent), (4) pick one
/// victim per alerted host (Alg. 1's host-alert arm) and schedule its
/// migration.
pub fn run_policy<P: ProfilePredictor>(
    cluster: &mut Cluster,
    metric: &RackMetric,
    predictor: &P,
    policy: AlertPolicy,
    start: usize,
    end: usize,
    migration_delay: usize,
) -> StrategyOutcome {
    assert!(start < end, "empty timeline");
    let threshold = cluster.sim.alert_threshold;
    let mut out = StrategyOutcome::default();
    let host_count = cluster.placement.host_count();
    // (complete_at, victims, source host)
    let mut in_flight: Vec<(usize, Vec<VmId>, HostId)> = Vec::new();

    for t in start..end {
        // (1) complete migrations whose pre-copy finished
        let (due, still): (Vec<_>, Vec<_>) = in_flight.into_iter().partition(|m| m.0 <= t);
        in_flight = still;
        for (_, victims, host) in due {
            let rack = cluster.placement.rack_of_host(host);
            let region: Vec<RackId> = cluster.dcn.neighbor_racks(rack, cluster.sim.region_hops);
            let plan: MigrationPlan = {
                let mut ctx = MigrationContext {
                    placement: &mut cluster.placement,
                    inventory: &cluster.dcn.inventory,
                    deps: &cluster.deps,
                    metric,
                    sim: &cluster.sim,
                };
                vmmigration(&mut ctx, &victims, &region, 3)
            };
            out.migrations += plan.moves.len();
            out.migration_cost += plan.total_cost;
        }

        // (2) overload exposure at the *actual* loads of this step
        for h in 0..host_count {
            let host = HostId::from_index(h);
            let load = effective_load(cluster, host, t);
            if load > threshold {
                out.overload_steps += 1;
                out.overload_integral += load - threshold;
            }
        }

        // (3) alerts per policy; silent while a migration is in flight
        let busy: Vec<HostId> = in_flight.iter().map(|m| m.2).collect();
        let mut alerted: Vec<HostId> = Vec::new();
        for h in 0..host_count {
            let host = HostId::from_index(h);
            if cluster.placement.vms_on(host).is_empty() || busy.contains(&host) {
                continue;
            }
            let trigger = match policy {
                AlertPolicy::Reactive => effective_load(cluster, host, t) > threshold,
                AlertPolicy::PreAlert => {
                    predicted_load(cluster, predictor, host, t, 1 + migration_delay) > threshold
                }
                AlertPolicy::Oracle => {
                    effective_load(cluster, host, t + 1 + migration_delay) > threshold
                }
            };
            if trigger {
                alerted.push(host);
            }
        }
        out.alerts += alerted.len();

        // (4) pick victims now; relief arrives after the pre-copy delay.
        // Each policy ranks victims by its own view of demand at
        // completion time: reactive only knows the present, pre-alert
        // uses the forecast, the oracle the actual future.
        for host in alerted {
            let candidates: Vec<VmId> = cluster.placement.vms_on(host).to_vec();
            let demand = |vm: VmId| -> f64 {
                let w = &cluster.workloads[vm.index()];
                match policy {
                    AlertPolicy::Reactive => w.at(t).cpu,
                    AlertPolicy::PreAlert => predictor.predict_ahead(w, t, 1 + migration_delay).cpu,
                    AlertPolicy::Oracle => w.at(t + 1 + migration_delay).cpu,
                }
            };
            let victims = priority(
                &candidates,
                &cluster.placement,
                demand,
                Budget::SingleMaxAlert,
            );
            if !victims.is_empty() {
                in_flight.push((t + migration_delay, victims, host));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::{ClusterConfig, HoltPredictor};
    use dcn_sim::SimConfig;
    use dcn_topology::fattree::{self, FatTreeConfig};

    fn cluster(seed: u64) -> Cluster {
        // hosts sized so diurnal peaks actually cross the threshold
        let dcn = fattree::build(&FatTreeConfig {
            host_capacity: 30.0,
            ..FatTreeConfig::paper(4)
        });
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 1.5,
                vm_capacity_range: (8.0, 16.0),
                skew: 1.0,
                workload_len: 300,
                seed,
                ..ClusterConfig::default()
            },
            SimConfig {
                alert_threshold: 0.55,
                ..SimConfig::paper()
            },
        )
    }

    #[test]
    fn effective_load_tracks_workloads() {
        let c = cluster(1);
        let host = HostId(0);
        if c.placement.vms_on(host).is_empty() {
            return;
        }
        let l0 = effective_load(&c, host, 10);
        assert!(l0 >= 0.0);
        // load must vary over time for a non-empty host
        let series: Vec<f64> = (0..100).map(|t| effective_load(&c, host, t)).collect();
        let spread = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - series.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.0);
    }

    #[test]
    fn predicted_load_close_to_actual_on_smooth_series() {
        let c = cluster(2);
        let p = HoltPredictor::default();
        let host = HostId(0);
        if c.placement.vms_on(host).is_empty() {
            return;
        }
        let t = 200;
        let predicted = predicted_load(&c, &p, host, t, 1);
        let actual = effective_load(&c, host, t);
        assert!((predicted - actual).abs() < 0.4, "{predicted} vs {actual}");
    }

    #[test]
    fn oracle_prealert_bounds_reactive_exposure() {
        // identical clusters, identical workloads: only the alert timing
        // differs. Per-seed results are noisy (one migration changes the
        // whole trajectory), so aggregate over several seeds; perfect
        // foresight must come out ahead of react-after-detection.
        let mut reactive_total = 0.0;
        let mut oracle_total = 0.0;
        let mut alerts_seen = 0;
        for seed in [3u64, 4, 5, 6] {
            let mut reactive = cluster(seed);
            let mut oracle = cluster(seed);
            let metric = RackMetric::build(&reactive.dcn, &reactive.sim);
            let p = HoltPredictor::default();
            let r = run_policy(
                &mut reactive,
                &metric,
                &p,
                AlertPolicy::Reactive,
                50,
                250,
                3,
            );
            let o = run_policy(&mut oracle, &metric, &p, AlertPolicy::Oracle, 50, 250, 3);
            reactive_total += r.overload_integral;
            oracle_total += o.overload_integral;
            alerts_seen += r.alerts + o.alerts;
        }
        assert!(alerts_seen > 0, "workloads never crossed the threshold");
        assert!(
            oracle_total < reactive_total,
            "oracle exposure {oracle_total} should beat reactive {reactive_total}"
        );
    }

    #[test]
    fn prealert_policy_runs_and_accounts() {
        let mut c = cluster(9);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let p = HoltPredictor::default();
        let out = run_policy(&mut c, &metric, &p, AlertPolicy::PreAlert, 50, 200, 3);
        // cost only accrues with migrations, alerts imply either overload
        // or prediction of one
        if out.migrations == 0 {
            assert_eq!(out.migration_cost, 0.0);
        } else {
            assert!(out.migration_cost > 0.0);
        }
        assert!(out.alerts >= out.migrations);
    }

    #[test]
    fn no_workloads_panics_cleanly() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let c = Cluster::build(
            dcn,
            &ClusterConfig {
                workload_len: 0,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        );
        // effective_load on a workload-less cluster is a programming
        // error; verify it panics rather than silently returning nonsense
        let result = std::panic::catch_unwind(|| effective_load(&c, HostId(0), 0));
        if !c.placement.vms_on(HostId(0)).is_empty() {
            assert!(result.is_err());
        }
    }
}

//! A simulated, deliberately unreliable control channel for shim
//! messages: seeded fault injection (drop, duplication, reordering,
//! variable delay) over a virtual-time delivery queue, plus blackholing
//! for crashed endpoints.
//!
//! Determinism: all faults draw from one seeded RNG, and the zero-fault
//! configuration ([`ChannelFaults::reliable`]) draws nothing at all — the
//! channel then delivers strictly in send order with unit delay, which is
//! what lets the message-passing runtime reproduce the shared-lock
//! runtime exactly.

use crate::protocol::ShimMsg;
use dcn_sim::{ChannelFaults, SheriffError};
use dcn_topology::RackId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Channel-level counters for one round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to [`SimNet::send`].
    pub sent: usize,
    /// Messages delivered to a receiver (duplicates count individually).
    pub delivered: usize,
    /// Messages lost to the configured drop probability.
    pub dropped: usize,
    /// Extra copies injected by the duplication fault.
    pub duplicated: usize,
    /// Messages held back by the reorder fault.
    pub reordered: usize,
    /// Messages swallowed because an endpoint was crashed.
    pub blackholed: usize,
    /// Messages cut by an active network partition.
    pub partitioned: usize,
}

/// One message in flight. Ordered by `(deliver_at, seq)` so ties on
/// delivery tick break in send order — FIFO when the channel is reliable.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight {
    deliver_at: u64,
    seq: u64,
    from: RackId,
    to: RackId,
    msg: ShimMsg,
}

/// `ShimMsg` doesn't implement `Ord`; compare in-flight entries by their
/// schedule key only.
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// A delivered message: `(from, to, msg)`.
pub type Delivery = (RackId, RackId, ShimMsg);

/// One rack's crash schedule in virtual time: the shim goes down at
/// `crash_at` and — unless `recover_at` is `None` — comes back, replays
/// its journal and rejoins heartbeating at `recover_at`. A window with
/// `crash_at == 0` and no recovery reproduces the old whole-round
/// `crashed` semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// Rack whose shim crashes.
    pub rack: RackId,
    /// Virtual time of the crash (inclusive: down from this tick on).
    pub crash_at: u64,
    /// Virtual time of recovery, or `None` to stay down for the round.
    pub recover_at: Option<u64>,
}

impl CrashWindow {
    /// A shim dead for the whole round (the pre-schedule behaviour).
    pub fn whole_round(rack: RackId) -> Self {
        Self {
            rack,
            crash_at: 0,
            recover_at: None,
        }
    }

    /// A shim down during `[crash_at, recover_at)`.
    pub fn during(rack: RackId, crash_at: u64, recover_at: u64) -> Self {
        Self {
            rack,
            crash_at,
            recover_at: Some(recover_at),
        }
    }

    /// Whether the shim is down at virtual time `t`.
    pub fn down_at(self, t: u64) -> bool {
        t >= self.crash_at && self.recover_at.is_none_or(|r| t < r)
    }
}

/// One link-fault window in virtual time: the data-plane link `link`
/// goes down at `fail_at` and — unless `restore_at` is `None` — comes
/// back at `restore_at`. Link faults touch the transfer plane only:
/// control messages keep flowing (the control channel is assumed to be
/// routed independently), but any migration transfer whose route crosses
/// the link stalls or re-routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFaultWindow {
    /// Edge index of the failing link in the fabric graph.
    pub link: usize,
    /// Virtual time of the failure (inclusive: down from this tick on).
    pub fail_at: u64,
    /// Virtual time of restoration, or `None` to stay down for the round.
    pub restore_at: Option<u64>,
}

impl LinkFaultWindow {
    /// A link dead for the whole round.
    pub fn whole_round(link: usize) -> Self {
        Self {
            link,
            fail_at: 0,
            restore_at: None,
        }
    }

    /// A link down during `[fail_at, restore_at)`.
    pub fn during(link: usize, fail_at: u64, restore_at: u64) -> Self {
        Self {
            link,
            fail_at,
            restore_at: Some(restore_at),
        }
    }

    /// Whether the link is down at virtual time `t`.
    pub fn down_at(self, t: u64) -> bool {
        t >= self.fail_at && self.restore_at.is_none_or(|r| t < r)
    }
}

/// One named network partition in virtual time: from `start_at` until
/// `heal_at` (exclusive, or forever when `None`) the racks in `members`
/// can only talk to each other, and everyone else can only talk among
/// themselves. Any message crossing the cut is swallowed — silently, like
/// a real partition: neither side learns the other is unreachable except
/// through silence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Racks on the inside of the cut.
    pub members: BTreeSet<RackId>,
    /// Virtual time the cut appears (inclusive).
    pub start_at: u64,
    /// Virtual time the cut heals, or `None` to last the whole round.
    pub heal_at: Option<u64>,
}

impl PartitionWindow {
    /// A partition isolating `members` during `[start_at, heal_at)`.
    pub fn new<I: IntoIterator<Item = RackId>>(
        members: I,
        start_at: u64,
        heal_at: Option<u64>,
    ) -> Self {
        Self {
            members: members.into_iter().collect(),
            start_at,
            heal_at,
        }
    }

    /// Whether the cut is in effect at virtual time `t`.
    pub fn active(&self, t: u64) -> bool {
        t >= self.start_at && self.heal_at.is_none_or(|h| t < h)
    }

    /// Whether a message from `a` to `b` crosses the cut at time `t`.
    pub fn cuts(&self, t: u64, a: RackId, b: RackId) -> bool {
        self.active(t) && (self.members.contains(&a) != self.members.contains(&b))
    }
}

/// The simulated network fabric connecting shims.
#[derive(Debug, Clone)]
pub struct SimNet {
    faults: ChannelFaults,
    rng: StdRng,
    queue: BinaryHeap<Reverse<InFlight>>,
    seq: u64,
    down: BTreeSet<RackId>,
    partitions: Vec<PartitionWindow>,
    /// Counters accumulated since construction.
    pub stats: NetStats,
}

impl SimNet {
    /// New channel with the given fault model and RNG seed.
    ///
    /// Panics on an invalid fault model; use [`SimNet::try_new`] for a
    /// typed error instead.
    pub fn new(faults: ChannelFaults, seed: u64) -> Self {
        Self::try_new(faults, seed).expect("invalid channel fault model")
    }

    /// Fallible [`SimNet::new`]: validates the fault model
    /// (probabilities in `[0, 1]`, delay window ordered) and returns a
    /// [`SheriffError`] on violation.
    pub fn try_new(faults: ChannelFaults, seed: u64) -> Result<Self, SheriffError> {
        faults.validate()?;
        Ok(Self {
            faults,
            rng: StdRng::seed_from_u64(seed),
            queue: BinaryHeap::new(),
            seq: 0,
            down: BTreeSet::new(),
            partitions: Vec::new(),
            stats: NetStats::default(),
        })
    }

    /// Install the round's partition schedule. Replaces any previous one.
    pub fn set_partitions(&mut self, partitions: Vec<PartitionWindow>) {
        self.partitions = partitions;
    }

    /// Whether a message from `a` to `b` crosses any active cut at `t`.
    pub fn cut(&self, t: u64, a: RackId, b: RackId) -> bool {
        self.partitions.iter().any(|p| p.cuts(t, a, b))
    }

    /// The installed partition windows.
    pub fn partitions(&self) -> &[PartitionWindow] {
        &self.partitions
    }

    /// Crash an endpoint: messages to or from it vanish silently.
    pub fn set_down(&mut self, rack: RackId) {
        self.down.insert(rack);
    }

    /// Recover a crashed endpoint.
    pub fn set_up(&mut self, rack: RackId) {
        self.down.remove(&rack);
    }

    /// Whether an endpoint is currently crashed.
    pub fn is_down(&self, rack: RackId) -> bool {
        self.down.contains(&rack)
    }

    /// Submit a message at virtual time `now`. It is dropped, delayed,
    /// duplicated, or blackholed according to the fault model.
    pub fn send(&mut self, now: u64, from: RackId, to: RackId, msg: ShimMsg) {
        self.stats.sent += 1;
        if self.down.contains(&from) || self.down.contains(&to) {
            self.stats.blackholed += 1;
            return;
        }
        // partition check precedes every RNG draw: cut traffic consumes
        // no randomness, so the fault sequence seen by the surviving
        // traffic is independent of how much was cut
        if self.cut(now, from, to) {
            self.stats.partitioned += 1;
            return;
        }
        if self.faults.drop > 0.0 && self.rng.gen_bool(self.faults.drop) {
            self.stats.dropped += 1;
            return;
        }
        let delay = self.draw_delay();
        self.enqueue(now + delay, from, to, msg.clone());
        if self.faults.duplicate > 0.0 && self.rng.gen_bool(self.faults.duplicate) {
            self.stats.duplicated += 1;
            let delay = self.draw_delay();
            self.enqueue(now + delay, from, to, msg);
        }
    }

    fn draw_delay(&mut self) -> u64 {
        let base = if self.faults.delay_min == self.faults.delay_max {
            self.faults.delay_min
        } else {
            self.rng
                .gen_range(self.faults.delay_min..=self.faults.delay_max)
        };
        let extra = if self.faults.reorder > 0.0 && self.rng.gen_bool(self.faults.reorder) {
            self.stats.reordered += 1;
            self.rng.gen_range(1..=3u64)
        } else {
            0
        };
        (base + extra).max(1)
    }

    fn enqueue(&mut self, deliver_at: u64, from: RackId, to: RackId, msg: ShimMsg) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(InFlight {
            deliver_at,
            seq,
            from,
            to,
            msg,
        }));
    }

    /// Pop every message due at or before `now`, in `(deliver_at, seq)`
    /// order. Messages addressed to an endpoint that crashed after the
    /// send are discarded here.
    pub fn poll(&mut self, now: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.deliver_at > now {
                break;
            }
            let Reverse(m) = self.queue.pop().expect("peeked");
            if self.down.contains(&m.to) {
                self.stats.blackholed += 1;
                continue;
            }
            // a cut that appeared while the message was in flight
            // swallows it at delivery time
            if self.cut(m.deliver_at, m.from, m.to) {
                self.stats.partitioned += 1;
                continue;
            }
            self.stats.delivered += 1;
            out.push((m.from, m.to, m.msg));
        }
        out
    }

    /// Virtual time of the next pending delivery, if any.
    pub fn next_delivery(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse(m)| m.deliver_at)
    }

    /// Whether nothing is in flight.
    pub fn idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ReqId;
    use dcn_topology::{HostId, VmId};

    fn req(seq: u32) -> ShimMsg {
        ShimMsg::Request {
            req_id: ReqId::new(RackId(0), seq),
            vm: VmId(0),
            dest: HostId(0),
            epoch: 0,
        }
    }

    #[test]
    fn reliable_channel_is_fifo_unit_delay() {
        let mut net = SimNet::new(ChannelFaults::reliable(), 1);
        for s in 0..5 {
            net.send(0, RackId(0), RackId(1), req(s));
        }
        assert!(
            net.poll(0).is_empty(),
            "unit delay: nothing due at send tick"
        );
        let got = net.poll(1);
        assert_eq!(got.len(), 5);
        for (s, (_, _, msg)) in got.into_iter().enumerate() {
            assert_eq!(msg, req(s as u32), "FIFO order preserved");
        }
        assert!(net.idle());
        assert_eq!(net.stats.sent, 5);
        assert_eq!(net.stats.delivered, 5);
        assert_eq!(
            net.stats.dropped + net.stats.duplicated + net.stats.blackholed,
            0
        );
    }

    #[test]
    fn drop_probability_loses_messages() {
        let mut net = SimNet::new(
            ChannelFaults {
                drop: 0.5,
                ..ChannelFaults::reliable()
            },
            7,
        );
        for s in 0..200 {
            net.send(0, RackId(0), RackId(1), req(s));
        }
        let got = net.poll(10);
        assert_eq!(got.len() + net.stats.dropped, 200);
        assert!(
            net.stats.dropped > 50,
            "~100 expected, got {}",
            net.stats.dropped
        );
        assert!(got.len() > 50);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut net = SimNet::new(
            ChannelFaults {
                duplicate: 1.0,
                ..ChannelFaults::reliable()
            },
            3,
        );
        net.send(0, RackId(0), RackId(1), req(0));
        let got = net.poll(10);
        assert_eq!(got.len(), 2);
        assert_eq!(net.stats.duplicated, 1);
    }

    #[test]
    fn reordering_overtakes_earlier_traffic() {
        // with reorder certain on the first message and off after, later
        // sends overtake it
        let mut net = SimNet::new(
            ChannelFaults {
                reorder: 0.3,
                ..ChannelFaults::reliable()
            },
            11,
        );
        for round in 0..50u32 {
            for s in 0..4 {
                net.send(round as u64 * 10, RackId(0), RackId(1), req(round * 4 + s));
            }
        }
        assert!(net.stats.reordered > 0, "reorder fault never fired");
        // drain: deliveries within a burst are not always in send order
        let got = net.poll(u64::MAX - 4);
        let order: Vec<u32> = got
            .iter()
            .map(|(_, _, m)| match m {
                ShimMsg::Request { req_id, .. } => req_id.0 as u32,
                _ => unreachable!(),
            })
            .collect();
        assert!(
            order.windows(2).any(|w| w[0] > w[1]),
            "no overtaking observed"
        );
    }

    #[test]
    fn crashed_endpoint_blackholes_both_directions() {
        let mut net = SimNet::new(ChannelFaults::reliable(), 1);
        net.set_down(RackId(1));
        net.send(0, RackId(0), RackId(1), req(0));
        net.send(0, RackId(1), RackId(0), req(1));
        assert!(net.poll(5).is_empty());
        assert_eq!(net.stats.blackholed, 2);
        net.set_up(RackId(1));
        net.send(5, RackId(0), RackId(1), req(2));
        assert_eq!(net.poll(6).len(), 1);
    }

    #[test]
    fn crash_after_send_discards_at_delivery() {
        let mut net = SimNet::new(ChannelFaults::reliable(), 1);
        net.send(0, RackId(0), RackId(1), req(0));
        net.set_down(RackId(1));
        assert!(net.poll(2).is_empty());
        assert_eq!(net.stats.blackholed, 1);
    }

    #[test]
    fn partition_cuts_crossing_traffic_both_ways() {
        let mut net = SimNet::new(ChannelFaults::reliable(), 1);
        net.set_partitions(vec![PartitionWindow::new([RackId(0)], 2, Some(6))]);
        // before the cut: crossing traffic flows
        net.send(0, RackId(0), RackId(1), req(0));
        assert_eq!(net.poll(1).len(), 1);
        // during the cut: both directions across it are swallowed,
        // intra-side traffic is not
        net.send(3, RackId(0), RackId(1), req(1));
        net.send(3, RackId(1), RackId(0), req(2));
        net.send(3, RackId(1), RackId(2), req(3));
        assert_eq!(net.poll(4).len(), 1, "only the intra-side message");
        assert_eq!(net.stats.partitioned, 2);
        // after the heal: traffic flows again
        net.send(6, RackId(0), RackId(1), req(4));
        assert_eq!(net.poll(7).len(), 1);
        assert_eq!(net.stats.partitioned, 2);
    }

    #[test]
    fn partition_appearing_mid_flight_swallows_at_delivery() {
        // delay 3 puts the delivery inside the cut even though the send
        // happened before it started
        let mut net = SimNet::new(
            ChannelFaults {
                delay_min: 3,
                delay_max: 3,
                ..ChannelFaults::reliable()
            },
            1,
        );
        net.set_partitions(vec![PartitionWindow::new([RackId(0)], 2, None)]);
        net.send(0, RackId(0), RackId(1), req(0));
        assert!(net.poll(10).is_empty());
        assert_eq!(net.stats.partitioned, 1);
    }

    #[test]
    fn try_new_rejects_bad_fault_models() {
        let bad = ChannelFaults {
            drop: 1.5,
            ..ChannelFaults::reliable()
        };
        assert!(SimNet::try_new(bad, 1).is_err());
        let bad = ChannelFaults {
            delay_min: 4,
            delay_max: 2,
            ..ChannelFaults::reliable()
        };
        assert!(SimNet::try_new(bad, 1).is_err());
        assert!(SimNet::try_new(ChannelFaults::lossy(0.2), 1).is_ok());
    }

    #[test]
    fn seeded_fault_sequences_are_reproducible() {
        let faults = ChannelFaults::lossy(0.3);
        let run = |seed: u64| {
            let mut net = SimNet::new(faults.clone(), seed);
            for s in 0..100 {
                net.send(s as u64, RackId(0), RackId(1), req(s));
            }
            let msgs: Vec<Delivery> = net.poll(u64::MAX - 4);
            (net.stats, msgs)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds, different faults");
    }
}

//! The message-passing fabric runtime on the deterministic event core.
//!
//! [`fabric_round_failover_obs`] runs one management round as a
//! discrete-event simulation over [`sheriff_sim`]: heartbeat emissions,
//! failure-detector sweeps, REQUEST/2PC timeouts and backoff, lease
//! expiry, crash/recover windows and partition heals are all *scheduled
//! events* on a [`Simulation`] agenda instead of per-tick drains of the
//! channel and fault queues. The round advances from activation to
//! activation; at every activated virtual tick it runs the same phases
//! in the same order as the historical per-tick loop, so the event core
//! reproduces the per-tick fabric byte for byte (DESIGN.md §10 maps
//! each phase to its event type and delay source).
//!
//! The correctness argument is *activation-time superset*: the agenda
//! is seeded and maintained so that every tick at which any phase could
//! change state — a delivery, a deadline, a lease, a detector
//! transition, a beacon, a schedule window — is activated, and ticks in
//! between are provably no-ops (the per-tick loop ran every phase every
//! tick; a phase with no due work does nothing). Extra activations are
//! therefore harmless and missed ones are the only bug class, which is
//! what the byte-identical equivalence tests pin.
//!
//! Because time is now continuous inside the round, behavior rounds
//! alone cannot express becomes available: per-rack liveness-beacon
//! intervals ([`FabricConfig::with_beacon_interval`]) and per-rack
//! alert-check intervals ([`FabricConfig::with_alert_check`]) that fire
//! at their own virtual times within one round.

use crate::audit::{
    audit_journals, audit_managers, audit_moves, audit_placement, AuditReport, AuditViolation,
};
use crate::channel::{CrashWindow, LinkFaultWindow, PartitionWindow, SimNet};
use crate::distributed::{
    plan_proposals, region_slots, reject_kind, select_victims, DistributedReport, ShimState,
};
use crate::failure::{RegionFailover, ShimHealth};
use crate::journal::TxnState;
use crate::protocol::{
    BackoffPolicy, Liveness, RejectReason, ReqId, ShimEndpoint, ShimMsg, TwoPhaseReply,
};
use dcn_sim::engine::Cluster;
use dcn_sim::{Alert, ChannelFaults, RackMetric, SimConfig};
use dcn_topology::{HostId, RackId, VmId};
use sheriff_obs::{emit, Event, EventSink};
use sheriff_sim::{EventId, Simulation, VirtualTime};
use std::collections::{BTreeMap, BTreeSet};

use crate::vmmigration::Move;

/// Configuration of the message-passing fabric runtime.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Channel fault model (drop/duplicate/reorder/delay).
    pub faults: ChannelFaults,
    /// Seed for the channel's fault RNG.
    pub seed: u64,
    /// Replan rounds per shim after the first, mirroring
    /// [`distributed_round_obs`](crate::distributed_round_obs)'s
    /// `max_retry`.
    pub max_retry: usize,
    /// Timeout/retransmission policy per request.
    pub backoff: BackoffPolicy,
    /// Ticks to collect `Hello`s before the first planning round; must
    /// exceed the channel's maximum delay or live racks look dead.
    #[deprecated(
        since = "0.1.0",
        note = "construct via `FabricConfig::for_channel` / `SystemBuilder` and tune with \
                `with_hello_window`"
    )]
    pub hello_window: u64,
    /// Interval between liveness beacons.
    #[deprecated(
        since = "0.1.0",
        note = "use `with_heartbeat_every` (or a per-rack `with_beacon_interval`) instead of \
                writing the per-round queue knob directly"
    )]
    pub heartbeat_period: u64,
    /// Silence (in ticks) after which a rack is presumed dead.
    pub liveness_deadline: u64,
    /// Hard cap on virtual time — a deadlock backstop; unresolved
    /// requests at the cap are abandoned and their VMs reported unplaced.
    pub max_ticks: u64,
    /// Shim crash schedule in virtual time. A window with `crash_at == 0`
    /// and no `recover_at` reproduces the old whole-round semantics (the
    /// shim answers no requests, sends no heartbeats and serves none of
    /// its own alerts); any other window crashes the shim mid-round and
    /// optionally recovers it, at which point it replays its intent
    /// journal and rejoins heartbeating.
    pub crashed: Vec<CrashWindow>,
    /// Named network-partition schedule in virtual time: while a window
    /// is active, traffic crossing its cut is silently swallowed. Both
    /// sides keep working — the minority side in degraded local mode —
    /// and reconcile when the window heals.
    pub partitions: Vec<PartitionWindow>,
    /// Ticks a journalled PREPARE stays valid without a COMMIT before the
    /// destination unilaterally aborts it. Must comfortably exceed one
    /// prepare → commit round trip or healthy transactions expire.
    pub prepare_lease: u64,
    /// Per-rack liveness-beacon interval overrides: `(rack, every)`
    /// pairs. A listed rack beacons every `every` ticks instead of the
    /// global heartbeat interval, letting a critical rack be watched at
    /// a tighter cadence. Empty (the default) keeps every rack on the
    /// global interval and reproduces the historical per-tick fabric
    /// exactly.
    pub beacon_intervals: Vec<(RackId, u64)>,
    /// Per-rack alert-check intervals: `(rack, every)` pairs. A listed
    /// source rack rescans itself for fresh pre-alerts every `every`
    /// ticks of virtual time *within* the round — the paper's regional
    /// pre-alert checks decoupled from round boundaries. Empty (the
    /// default) disables mid-round checks.
    pub alert_checks: Vec<(RackId, u64)>,
    /// Data-plane link-fault schedule in virtual time: while a window is
    /// open the link is dead for the transfer plane — any pre-copy whose
    /// route crosses it stalls at its checkpoint or re-routes onto a
    /// surviving candidate. Only meaningful with the transfer model
    /// enabled; control messages are unaffected (the control channel has
    /// its own fault model). Empty (the default) keeps the transfer
    /// plane fault-free and byte-identical to the pre-recovery fabric.
    pub link_faults: Vec<LinkFaultWindow>,
    /// Network-aware transfer model. `None` (the default) settles every
    /// committed migration instantaneously — byte-identical to the
    /// pre-transfer fabric. `Some` runs each committed migration's
    /// pre-copy as a scheduled transfer on the event core: routed over
    /// the topology's k-shortest paths, sharing link bandwidth max-min
    /// fairly with concurrent transfers, admission-capped and rerouted
    /// under QCN congestion; placement-affecting ACKs only flow once
    /// the transfer completes.
    pub transfer: Option<sheriff_transfer::TransferConfig>,
}

#[allow(deprecated)]
impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            faults: ChannelFaults::reliable(),
            seed: 0x5EED,
            max_retry: 3,
            backoff: BackoffPolicy::default(),
            hello_window: 2,
            heartbeat_period: 8,
            liveness_deadline: 24,
            max_ticks: 4096,
            crashed: Vec::new(),
            partitions: Vec::new(),
            prepare_lease: 64,
            beacon_intervals: Vec::new(),
            alert_checks: Vec::new(),
            link_faults: Vec::new(),
            transfer: None,
        }
    }
}

impl FabricConfig {
    /// Adopt the cluster's configured channel fault model.
    #[deprecated(
        since = "0.1.0",
        note = "use `FabricConfig::for_channel(sim.channel.clone(), seed)` or \
                `SystemBuilder::fabric_runtime`"
    )]
    pub fn from_sim(sim: &SimConfig, seed: u64) -> Self {
        Self::for_channel(sim.channel.clone(), seed)
    }

    /// A fabric configuration for the given channel fault model, with
    /// the hello window widened past the channel's worst base delay so a
    /// healthy, slow channel is not mistaken for dead shims.
    #[allow(deprecated)]
    pub fn for_channel(faults: ChannelFaults, seed: u64) -> Self {
        let hello = 2u64.max(faults.delay_max + 1);
        Self {
            faults,
            seed,
            hello_window: hello,
            ..Self::default()
        }
    }

    /// Override the pre-planning hello window.
    #[allow(deprecated)]
    pub fn with_hello_window(mut self, ticks: u64) -> Self {
        self.hello_window = ticks;
        self
    }

    /// Override the global liveness-beacon interval.
    #[allow(deprecated)]
    pub fn with_heartbeat_every(mut self, ticks: u64) -> Self {
        self.heartbeat_period = ticks;
        self
    }

    /// Override the liveness silence deadline.
    pub fn with_liveness_deadline(mut self, ticks: u64) -> Self {
        self.liveness_deadline = ticks;
        self
    }

    /// Beacon `rack` every `every` ticks instead of the global interval.
    pub fn with_beacon_interval(mut self, rack: RackId, every: u64) -> Self {
        self.beacon_intervals.retain(|(r, _)| *r != rack);
        self.beacon_intervals.push((rack, every));
        self
    }

    /// Rescan `rack` for fresh pre-alerts every `every` ticks of virtual
    /// time within the round.
    pub fn with_alert_check(mut self, rack: RackId, every: u64) -> Self {
        self.alert_checks.retain(|(r, _)| *r != rack);
        self.alert_checks.push((rack, every));
        self
    }

    /// Enable the network-aware transfer model: committed migrations
    /// stream their pre-copy over routed, bandwidth-shared transfers
    /// instead of settling instantaneously.
    pub fn with_transfer(mut self, transfer: sheriff_transfer::TransferConfig) -> Self {
        self.transfer = Some(transfer);
        self
    }

    /// Schedule a data-plane link fault window for the transfer plane.
    pub fn with_link_fault(mut self, window: LinkFaultWindow) -> Self {
        self.link_faults.push(window);
        self
    }

    /// The global liveness-beacon interval.
    #[allow(deprecated)]
    pub fn heartbeat_every(&self) -> u64 {
        self.heartbeat_period
    }

    /// The beacon interval of `rack`: its override if listed, else the
    /// global interval.
    pub fn beacon_every(&self, rack: RackId) -> u64 {
        self.beacon_intervals
            .iter()
            .find(|(r, _)| *r == rack)
            .map(|&(_, every)| every)
            .unwrap_or_else(|| self.heartbeat_every())
    }

    /// The alert-check interval of `rack` (0 = no mid-round checks).
    pub fn alert_check_every(&self, rack: RackId) -> u64 {
        self.alert_checks
            .iter()
            .find(|(r, _)| *r == rack)
            .map(|&(_, every)| every)
            .unwrap_or(0)
    }
}

/// Which phase of the two-phase commit a transaction is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnPhase {
    /// PREPARE sent; waiting for the destination's vote.
    Preparing,
    /// PREPARE-OK received and COMMIT sent; waiting for the final ACK.
    Committing,
}

/// A transaction awaiting its next reply at the source shim.
struct Outstanding {
    vm: VmId,
    from: HostId,
    dest: HostId,
    cost: f64,
    attempt: u32,
    deadline: u64,
    phase: TxnPhase,
    /// Absolute lease carried by the PREPARE (stable across resends).
    lease: u64,
}

/// 2PC context of a migration whose pre-copy the transfer scheduler is
/// streaming: everything the destination needs to finalize the commit
/// and ACK the source once the last byte lands.
struct TransferMeta {
    /// The migrating VM.
    vm: VmId,
    /// Rack that sent the COMMIT (where the ACK goes).
    src_rack: RackId,
    /// Destination rack (whose endpoint journal finalizes).
    dst_rack: RackId,
    /// Epoch the COMMIT carried, replayed into `handle_commit` at
    /// completion so fencing still applies.
    epoch: u64,
}

/// Source-shim actor state for the fabric runtime.
struct FabricShim {
    st: ShimState,
    liveness: Liveness,
    region: Vec<RackId>,
    /// `BTreeMap`, not `HashMap`: these maps are drained/iterated when
    /// settling fates, so their order feeds report ordering (DET02).
    outstanding: BTreeMap<ReqId, Outstanding>,
    /// Given-up requests whose fate is unknown: a stale copy may still
    /// commit at the destination, so the VM must not be replanned. The
    /// entry's `deadline` becomes the patience cutoff for late verdicts.
    zombies: BTreeMap<ReqId, Outstanding>,
    /// Zombies whose patience expired with no verdict; resolved against
    /// ground truth when the simulator assembles the report.
    unresolved: Vec<Outstanding>,
    /// Planning rounds still allowed (first plan included).
    rounds_left: usize,
    started: bool,
    done: bool,
    /// ACKs received for the current batch.
    progressed: bool,
    /// A timeout give-up resolved to a late REJECT since the last plan:
    /// allows one replan even without progress (the degradation ladder's
    /// recovery step).
    gave_up: bool,
    degraded: bool,
    /// Planned at least once while an active partition cut part of the
    /// region off (degraded local handling).
    part_degraded: bool,
    /// Currently crashed (its schedule window is open).
    down: bool,
    /// Earliest tick at which a recovered shim may plan again — one
    /// beacon period after recovery, so its liveness view is fresh.
    resume_at: u64,
}

/// Why a derived [`FabricEvent::Wake`] activation was scheduled — the
/// delay-source column of the DESIGN.md §10 phase table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WakeReason {
    /// The channel's next pending `deliver_at`.
    Delivery,
    /// The earliest request/zombie deadline (backoff policy).
    Timeout,
    /// The earliest journalled PREPARE lease.
    Lease,
    /// The failure detector's next silence-threshold crossing.
    Detector,
    /// A shim's `max(hello_window, resume_at)` planning gate.
    ShimStart,
    /// The transfer scheduler's next completion (or a queued transfer
    /// waiting for an admission slot).
    Transfer,
}

/// The fabric round's event vocabulary. Round phases map onto these
/// one-to-one; `Wake` events carry no payload because an activation
/// runs *all* phases for its tick (activation-time superset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FabricEvent {
    /// Crash window `schedule[i]` opens.
    Crash(usize),
    /// Crash window `schedule[i]` closes: journal replay and rejoin.
    Recover(usize),
    /// Partition window `cfg.partitions[i]` heals.
    Heal(usize),
    /// Link-fault window `cfg.link_faults[i]` opens: the transfer plane
    /// loses the link, stalling or re-routing the pre-copies on it.
    LinkFail(usize),
    /// Link-fault window `cfg.link_faults[i]` closes: stalled pre-copies
    /// resume from their checkpoints.
    LinkRestore(usize),
    /// A liveness beacon from a rack (Hello at tick 0, Heartbeat after),
    /// self-rescheduling at the rack's beacon interval.
    Beacon(RackId),
    /// A per-rack alert-check interval fires.
    AlertCheck(RackId),
    /// A derived activation with no payload of its own.
    Wake(WakeReason),
}

/// Actor id for derived wakes (no rack owns them).
const WAKE_ACTOR: u64 = u64::MAX;

/// Schedule a derived activation at `at`, deduplicated on time: if any
/// never-cancelled event is already on the agenda for that tick, the
/// tick is activated regardless and no extra wake is needed.
fn schedule_wake(
    agenda: &mut Simulation<FabricEvent>,
    seen: &mut BTreeSet<u64>,
    at: u64,
    reason: WakeReason,
) {
    if seen.insert(at) {
        agenda.schedule_at(VirtualTime::new(at), WAKE_ACTOR, FabricEvent::Wake(reason));
    }
}

/// Run one management round entirely over the simulated shim channel:
/// REQUEST/ACK/REJECT with deadlines, backoff, idempotent retransmission,
/// heartbeat liveness, and graceful degradation around crashed shims.
///
/// Single-threaded and deterministic in virtual time; with
/// [`ChannelFaults::reliable`] and no crashes it produces the same plan
/// as [`distributed_round_obs`](crate::distributed_round_obs) with
/// `max_retry = cfg.max_retry`.
#[cfg(feature = "legacy")]
#[deprecated(
    since = "0.1.0",
    note = "use `FabricRuntime` via the `Runtime` trait, or `fabric_round_obs`"
)]
pub fn fabric_round(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    cfg: &FabricConfig,
) -> DistributedReport {
    fabric_round_obs(
        cluster,
        metric,
        alerts,
        alert_values,
        cfg,
        &mut sheriff_obs::NullSink,
    )
}

/// The fabric round with an [`EventSink`] observing the message exchange:
/// every REQUEST/ACK/REJECT, timeout, retransmission, absorbed duplicate,
/// degradation step, and crashed shim becomes a structured event, and the
/// channel's [`NetStats`](crate::channel::NetStats) land in counters
/// (`net.sent`, `net.dropped`, ...). The runtime is single-threaded in
/// virtual time, so the event stream is deterministic for a fixed seed.
pub fn fabric_round_obs<S: EventSink + ?Sized>(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    cfg: &FabricConfig,
    sink: &mut S,
) -> DistributedReport {
    // single-shot compatibility path: fresh failover state has no
    // heartbeat history, so no takeover or fencing can fire and the
    // round reproduces the pre-failover fabric byte for byte
    let mut failover = RegionFailover::new(cfg.heartbeat_every().max(1), cfg.liveness_deadline);
    fabric_round_failover_obs(
        cluster,
        metric,
        alerts,
        alert_values,
        cfg,
        &mut failover,
        sink,
    )
}

/// The fabric round with persistent partition-tolerance state threaded
/// through: the adaptive failure detector accrues heartbeat silence
/// across rounds, a shim it declares Dead has its racks handed to a
/// deterministic successor under a bumped epoch, and 2PC messages
/// carrying a superseded epoch are fenced with a `StaleEpoch` reject
/// that teaches the zombie the current term. Partition windows from
/// `cfg.partitions` cut the simulated network; shims plan around active
/// cuts in degraded local mode and reconcile parked work when a window
/// heals. [`fabric_round_obs`] is this with throwaway state.
///
/// Internally the round is a discrete-event simulation: the agenda is
/// seeded with every schedule window, heal, and beacon, and the loop
/// hops from activation to activation, running the historical per-tick
/// phases at each one. Deliveries, deadlines, leases, detector
/// transitions, and planning gates schedule their own derived wakes, so
/// no state-changing tick is ever skipped.
#[allow(clippy::too_many_arguments)]
pub fn fabric_round_failover_obs<S: EventSink + ?Sized>(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    cfg: &FabricConfig,
    failover: &mut RegionFailover,
    sink: &mut S,
) -> DistributedReport {
    // the per-round queue knobs survive as deprecated fields; the event
    // engine normalizes them into plain locals at this single point
    #[allow(deprecated)]
    let hello_window = cfg.hello_window;
    let mut racks: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
    racks.sort_unstable();
    racks.dedup();
    // a window with crash_at == 0 and no recovery is the old whole-round
    // crash: the rack is excluded from the round entirely. Every other
    // window is a mid-round transition handled as Crash/Recover events.
    let whole_round: BTreeSet<RackId> = cfg
        .crashed
        .iter()
        .filter(|w| w.crash_at == 0 && w.recover_at.is_none())
        .map(|w| w.rack)
        .collect();
    let schedule: Vec<CrashWindow> = cfg
        .crashed
        .iter()
        .copied()
        .filter(|w| !(w.crash_at == 0 && w.recover_at.is_none()))
        .collect();
    let crashed_alerted_racks: Vec<RackId> = racks
        .iter()
        .copied()
        .filter(|r| whole_round.contains(r))
        .collect();
    for &r in &crashed_alerted_racks {
        emit(sink, || Event::ShimCrashed {
            rack: r.index() as u64,
        });
    }
    racks.retain(|r| !whole_round.contains(r));
    let mut report = DistributedReport {
        crashed_shims: crashed_alerted_racks.len(),
        ..DistributedReport::default()
    };
    // detector baseline: every rack is expected to beacon from the
    // round's start, so a shim that is down from tick 0 accrues silence
    for i in 0..cluster.dcn.rack_count() {
        failover
            .detector
            .track(RackId::from_index(i), failover.clock);
    }
    // regional takeover: an alerted rack whose shim the detector has
    // already declared Dead hands its alerts to a deterministic
    // successor — the lowest-index live alerted rack in its region,
    // else the lowest-index live alerted rack anywhere. The first
    // handover bumps the rack's epoch so the deposed shim's 2PC traffic
    // can be fenced when it returns.
    let mut adopted: BTreeMap<RackId, Vec<RackId>> = BTreeMap::new();
    for &r in &crashed_alerted_racks {
        if failover.detector.health(r) != ShimHealth::Dead {
            continue;
        }
        let region = cluster.dcn.neighbor_racks(r, cluster.sim.region_hops);
        let succ = region
            .iter()
            .copied()
            .filter(|s| racks.contains(s))
            .min()
            .or_else(|| racks.first().copied());
        if let Some(s) = succ {
            let continued = failover.taken_over(r) && failover.manager_of(r) == s;
            let epoch = failover.take_over(r, s);
            if !continued {
                emit(sink, || Event::RegionTakenOver {
                    rack: r.index() as u64,
                    by: s.index() as u64,
                    epoch,
                });
                sink.counter("region.takeovers", 1);
                report.takeovers += 1;
            }
            adopted.entry(s).or_default().push(r);
        }
    }
    if racks.is_empty() {
        return report;
    }
    report.shims = racks.len();

    let rack_count = cluster.dcn.rack_count();
    let sim = cluster.sim.clone();
    let mut net = SimNet::new(cfg.faults.clone(), cfg.seed);
    net.set_partitions(cfg.partitions.clone());
    // racks currently down, maintained by the Crash/Recover events — the
    // membership test the beacon handler uses
    let mut down: BTreeSet<RackId> = whole_round.clone();
    for &r in &whole_round {
        net.set_down(r);
    }
    let mut endpoints: Vec<ShimEndpoint> = (0..rack_count)
        .map(|r| ShimEndpoint::new(RackId::from_index(r)))
        .collect();

    // victim selection on the initial placement (Alg. 1), as in the
    // threaded runtime
    let mut shims: Vec<FabricShim> = racks
        .iter()
        .map(|&rack| {
            let (mut pending, mut candidates) = select_victims(
                &cluster.placement,
                &cluster.dcn.inventory,
                &sim,
                rack,
                alerts,
                alert_values,
            );
            // a takeover successor also serves the alerts of the racks
            // it adopted, with victims selected the same way
            for &ar in adopted.get(&rack).map(Vec::as_slice).unwrap_or_default() {
                let (more, more_cand) = select_victims(
                    &cluster.placement,
                    &cluster.dcn.inventory,
                    &sim,
                    ar,
                    alerts,
                    alert_values,
                );
                pending.extend(more);
                candidates += more_cand;
            }
            emit(sink, || Event::VictimsSelected {
                rack: rack.index() as u64,
                candidates: candidates as u64,
                selected: pending.len() as u64,
            });
            let region = cluster.dcn.neighbor_racks(rack, sim.region_hops);
            FabricShim {
                st: ShimState {
                    rack,
                    active: !pending.is_empty(),
                    pending,
                    slots: Vec::new(),
                    excluded: Vec::new(),
                    plan: Default::default(),
                    retries: 0,
                    seq: 0,
                },
                liveness: Liveness::new(cfg.liveness_deadline),
                region,
                outstanding: BTreeMap::new(),
                zombies: BTreeMap::new(),
                unresolved: Vec::new(),
                rounds_left: cfg.max_retry + 1,
                started: false,
                done: false,
                progressed: false,
                gave_up: false,
                degraded: false,
                part_degraded: false,
                down: false,
                resume_at: 0,
            }
        })
        .collect();
    // shims with nothing to do are immediately done
    for s in &mut shims {
        if !s.st.active {
            s.done = true;
        }
    }

    let source_index: BTreeMap<RackId, usize> = shims
        .iter()
        .enumerate()
        .map(|(i, s)| (s.st.rack, i))
        .collect();
    let all_racks: Vec<RackId> = (0..rack_count).map(RackId::from_index).collect();
    // longest possible request + reply round trip: base delay plus the
    // reorder fault's extra hold-back (up to 3 ticks) each way, with slack
    let patience = 2 * (cfg.faults.delay_max + 3) + 2;

    // ---- transfer scheduler ---------------------------------------------
    // With `cfg.transfer` unset this stays `None` and every path below
    // that touches it is dead — the round is byte-identical to the
    // instantaneous-settlement fabric. When set, a COMMIT hands the
    // migration to the scheduler instead of ACKing immediately; the ACK
    // (and the txn_committed bookkeeping) flows at TransferCompleted.
    let mut transfers = cfg
        .transfer
        .as_ref()
        .map(|tc| sheriff_transfer::TransferScheduler::new(tc.clone()));
    // per-transfer 2PC context, keyed by request id: who to ACK and
    // under which epoch to finalize the journal entry
    let mut transfer_meta: BTreeMap<ReqId, TransferMeta> = BTreeMap::new();
    // in-round transfer-plane audit: a transfer streaming across a
    // failed link, or active without a Prepared journal entry, is an
    // invariant breach — flagged once per (transfer, fact) and merged
    // into the round's audit report
    let mut transfer_audit = AuditReport::default();
    let mut flagged_on_failed: BTreeSet<(u64, usize)> = BTreeSet::new();
    let mut flagged_no_prepare: BTreeSet<u64> = BTreeSet::new();
    // terminal rack-crash cancellations (no recovery scheduled): counted
    // into `transfer_failures` on top of the scheduler's retry-budget
    // exhaustions, which are tracked inside `ts`
    let mut rack_failed_transfers: usize = 0;

    // ---- agenda setup ---------------------------------------------------
    // `seen` holds every tick that already has a never-cancelled event,
    // so derived wakes dedupe on time. Timeout wakes are the exception:
    // they are cancellable, so they live in `timeout_wake` instead and
    // never enter `seen`.
    let mut agenda: Simulation<FabricEvent> = Simulation::new();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut timeout_wake: Option<(u64, EventId)> = None;
    for (i, w) in schedule.iter().enumerate() {
        seen.insert(w.crash_at);
        agenda.schedule_at(
            VirtualTime::new(w.crash_at),
            w.rack.index() as u64,
            FabricEvent::Crash(i),
        );
        if let Some(r) = w.recover_at {
            seen.insert(r);
            agenda.schedule_at(
                VirtualTime::new(r),
                w.rack.index() as u64,
                FabricEvent::Recover(i),
            );
        }
    }
    for (i, p) in cfg.partitions.iter().enumerate() {
        if let Some(h) = p.heal_at {
            seen.insert(h);
            agenda.schedule_at(VirtualTime::new(h), i as u64, FabricEvent::Heal(i));
        }
    }
    // link faults only touch the transfer plane: with the model disabled
    // they are not seeded at all, so the agenda (and the round) stays
    // byte-identical to the fault-free fabric
    if transfers.is_some() {
        for (i, w) in cfg.link_faults.iter().enumerate() {
            seen.insert(w.fail_at);
            agenda.schedule_at(
                VirtualTime::new(w.fail_at),
                w.link as u64,
                FabricEvent::LinkFail(i),
            );
            if let Some(r) = w.restore_at {
                seen.insert(r);
                agenda.schedule_at(
                    VirtualTime::new(r),
                    w.link as u64,
                    FabricEvent::LinkRestore(i),
                );
            }
        }
    }
    // every rack beacons from tick 0 (Hello), then self-reschedules at
    // its own interval — the emit_self idiom, flattened: the recurrence
    // is re-armed by the Beacon handler so a down rack keeps cadence
    for &r in &all_racks {
        seen.insert(0);
        agenda.schedule_at(VirtualTime::ZERO, r.index() as u64, FabricEvent::Beacon(r));
    }
    for &(r, every) in &cfg.alert_checks {
        if every > 0 {
            seen.insert(every);
            agenda.schedule_at(
                VirtualTime::new(every),
                r.index() as u64,
                FabricEvent::AlertCheck(r),
            );
        }
    }
    schedule_wake(&mut agenda, &mut seen, hello_window, WakeReason::ShimStart);

    // ---- the event loop -------------------------------------------------
    let mut t: u64 = 0;
    loop {
        // drain this activation's events and bucket them by phase; pop
        // order within a bucket is schedule order, which reproduces the
        // historical iteration orders (schedule order for windows,
        // partition-index order for heals, rack order for beacons)
        let mut crash_recover: Vec<(usize, bool)> = Vec::new();
        let mut heals: Vec<usize> = Vec::new();
        let mut link_fails: Vec<usize> = Vec::new();
        let mut link_restores: Vec<usize> = Vec::new();
        let mut checks: Vec<RackId> = Vec::new();
        let mut beacons: Vec<RackId> = Vec::new();
        for ev in agenda.take_due(VirtualTime::new(t)) {
            match ev.event {
                FabricEvent::Crash(i) => crash_recover.push((i, false)),
                FabricEvent::Recover(i) => crash_recover.push((i, true)),
                FabricEvent::Heal(i) => heals.push(i),
                FabricEvent::LinkFail(i) => link_fails.push(i),
                FabricEvent::LinkRestore(i) => link_restores.push(i),
                FabricEvent::AlertCheck(r) => checks.push(r),
                FabricEvent::Beacon(r) => beacons.push(r),
                FabricEvent::Wake(WakeReason::Timeout) => timeout_wake = None,
                FabricEvent::Wake(_) => {}
            }
        }

        // phase 1 — crash/recover transitions scheduled for this tick. A
        // crashing source shim loses its volatile negotiation state
        // (outstanding requests become unresolved — their fate settles
        // against ground truth); its durable intent journal survives and
        // is replayed on recovery.
        for &(wi, is_recover) in &crash_recover {
            let Some(w) = schedule.get(wi) else { continue };
            if !is_recover {
                net.set_down(w.rack);
                down.insert(w.rack);
                emit(sink, || Event::ShimCrashed {
                    rack: w.rack.index() as u64,
                });
                // pre-copies streaming *into* the crashed rack die with
                // it. With a recovery scheduled their journal prepares
                // survive under the extended lease, so a retransmitted
                // COMMIT after recovery simply restarts the transfer.
                // Without one the 2PC context is dead for good: emit the
                // failure and abort the journalled prepare now —
                // symmetric with the lease-abort path — instead of
                // leaving a silent zombie for the end-of-round sweep.
                if let Some(ts) = transfers.as_mut() {
                    let recovers = w.recover_at.is_some();
                    for id in ts.cancel_rack(w.rack.index(), t) {
                        let req_id = ReqId(id);
                        let meta = transfer_meta.remove(&req_id);
                        sink.counter("transfer.cancelled", 1);
                        let Some(meta) = meta else { continue };
                        if recovers {
                            continue;
                        }
                        rack_failed_transfers += 1;
                        emit(sink, || Event::TransferFailed {
                            req: id,
                            vm: meta.vm.index() as u64,
                            attempts: 0,
                        });
                        sink.counter("transfer.failed", 1);
                        let Some(ep) = endpoints.get_mut(meta.dst_rack.index()) else {
                            continue;
                        };
                        if let Some((vm, _)) =
                            ep.handle_abort(&mut cluster.placement, &cluster.deps, req_id)
                        {
                            report.txn_aborted += 1;
                            emit(sink, || Event::TxnAborted {
                                req: id,
                                vm: vm.index() as u64,
                            });
                            sink.counter("txn.aborted", 1);
                        }
                    }
                }
                if let Some(&i) = source_index.get(&w.rack) {
                    let Some(shim) = shims.get_mut(i) else {
                        continue;
                    };
                    shim.down = true;
                    shim.started = false;
                    let lost: Vec<Outstanding> = std::mem::take(&mut shim.outstanding)
                        .into_values()
                        .chain(std::mem::take(&mut shim.zombies).into_values())
                        .collect();
                    shim.unresolved.extend(lost);
                }
            } else {
                net.set_up(w.rack);
                down.remove(&w.rack);
                emit(sink, || Event::ShimRecovered {
                    rack: w.rack.index() as u64,
                });
                report.recoveries += 1;
                // journal replay: re-ACK committed transfers, abort
                // orphaned prepares whose lease lapsed while down and
                // prepares journalled under a since-superseded epoch —
                // the restore path can never resurrect old-epoch intents
                let Some(ep) = endpoints.get_mut(w.rack.index()) else {
                    continue;
                };
                let rep =
                    ep.recover_fenced(&mut cluster.placement, &cluster.deps, t, failover.epochs());
                sink.counter("journal.replayed", rep.replayed as u64);
                sink.counter("journal.reacked", rep.reacks.len() as u64);
                sink.counter("journal.forwarded", rep.forwarded as u64);
                for req_id in rep.reacks {
                    let epoch = failover.view_of(w.rack);
                    net.send(t, w.rack, req_id.source(), ShimMsg::Ack { req_id, epoch });
                }
                for (req, vm) in rep.lease_aborts.iter().chain(rep.epoch_aborts.iter()) {
                    let (req, vm) = (*req, *vm);
                    report.txn_aborted += 1;
                    emit(sink, || Event::TxnAborted {
                        req: req.0,
                        vm: vm.index() as u64,
                    });
                    sink.counter("txn.aborted", 1);
                }
                if let Some(&i) = source_index.get(&w.rack) {
                    if let Some(shim) = shims.get_mut(i) {
                        shim.down = false;
                        // rejoin heartbeating first; plan once the
                        // liveness view has had a full beacon period to
                        // repopulate
                        shim.resume_at = t + cfg.beacon_every(w.rack) + 1;
                    }
                }
            }
        }

        // phase 1b — link-fault windows scheduled for this tick,
        // propagated into the transfer plane: a failing link stalls or
        // re-routes every pre-copy crossing it (checkpoint retained,
        // max-min shares recomputed for the survivors); a restoring link
        // resumes stalled pre-copies from their checkpoints. Fails run
        // before restores so a zero-width window nets out to a restore.
        if let Some(ts) = transfers.as_mut() {
            for &idx in &link_fails {
                let Some(w) = cfg.link_faults.get(idx) else {
                    continue;
                };
                let out = ts.fail_link(t, w.link);
                for s in &out.stalled {
                    emit(sink, || Event::TransferStalled {
                        req: s.id,
                        vm: s.vm,
                        link: s.link as u64,
                    });
                    sink.counter("transfer.stalled", 1);
                }
                for r in &out.rerouted {
                    emit(sink, || Event::TransferRerouted {
                        req: r.id,
                        vm: r.vm,
                        hops: r.hops as u64,
                    });
                    sink.counter("transfer.rerouted", 1);
                }
            }
            for &idx in &link_restores {
                let Some(w) = cfg.link_faults.get(idx) else {
                    continue;
                };
                for r in ts.restore_link(t, w.link) {
                    emit(sink, || Event::TransferResumed {
                        req: r.id,
                        vm: r.vm,
                        saved: r.saved,
                    });
                    sink.counter("transfer.resumed", 1);
                }
            }
        }

        // phase 2 — partition heals scheduled for this tick: reconcile
        // parked work. A pending VM whose rack is managed by another
        // shim was (or will be) handled by that manager — replanning it
        // here would double-manage, so it is dropped and counted as a
        // reconciliation conflict. Shims the cut starved into parking
        // with work left are woken for a post-heal replan.
        for &idx in &heals {
            let Some(p) = cfg.partitions.get(idx) else {
                continue;
            };
            emit(sink, || Event::PartitionHealed {
                partition: idx as u64,
                racks: p.members.len() as u64,
            });
            sink.counter("net.healed", 1);
            for shim in &mut shims {
                if !shim.st.pending.is_empty() {
                    let before = shim.st.pending.len();
                    let rack = shim.st.rack;
                    shim.st
                        .pending
                        .retain(|&vm| failover.manager_of(cluster.placement.rack_of(vm)) == rack);
                    report.reconciliations += before - shim.st.pending.len();
                }
                if shim.done && !shim.down && !shim.st.pending.is_empty() {
                    shim.done = false;
                    shim.gave_up = true;
                    shim.rounds_left = shim.rounds_left.max(1);
                }
            }
        }

        // phase 2b — per-rack alert checks: rescan the rack for fresh
        // pre-alerts at its own virtual-time interval, independent of
        // round boundaries. VMs already managed (pending, in-flight,
        // unknown-fate, or moved) are never re-adopted.
        for &r in &checks {
            let every = cfg.alert_check_every(r);
            if every > 0 {
                seen.insert(t + every);
                agenda.schedule_at(
                    VirtualTime::new(t + every),
                    r.index() as u64,
                    FabricEvent::AlertCheck(r),
                );
            }
            let Some(&i) = source_index.get(&r) else {
                continue;
            };
            let (victims, _) = select_victims(
                &cluster.placement,
                &cluster.dcn.inventory,
                &sim,
                r,
                alerts,
                alert_values,
            );
            let Some(shim) = shims.get_mut(i) else {
                continue;
            };
            if shim.down {
                continue;
            }
            let mut busy: BTreeSet<VmId> = shim
                .st
                .pending
                .iter()
                .copied()
                .chain(shim.outstanding.values().map(|o| o.vm))
                .chain(shim.zombies.values().map(|o| o.vm))
                .chain(shim.unresolved.iter().map(|o| o.vm))
                .chain(shim.st.plan.moves.iter().map(|m| m.vm))
                .collect();
            // a VM whose pre-copy is mid-stream is already managed:
            // re-adopting it here would double-plan the same move
            if let Some(ts) = transfers.as_ref() {
                busy.extend(
                    ts.in_flight_vms()
                        .into_iter()
                        .map(|v| VmId::from_index(v as usize)),
                );
            }
            let fresh: Vec<VmId> = victims
                .into_iter()
                .filter(|vm| !busy.contains(vm))
                .collect();
            emit(sink, || Event::AlertCheckFired {
                rack: r.index() as u64,
                tick: t,
                fresh: fresh.len() as u64,
            });
            sink.counter("alerts.checks", 1);
            if !fresh.is_empty() {
                shim.st.pending.extend(fresh);
                shim.done = false;
                shim.gave_up = true;
                shim.rounds_left = shim.rounds_left.max(1);
            }
        }

        // phase 3 — liveness beacons: every live rack announces itself to
        // every source shim at t = 0 (Hello) and at its beacon interval
        // after (Heartbeat). The failure detector watches the *emission*
        // (simulator ground truth): a partitioned-but-alive shim keeps
        // emitting, so a cut never looks like a crash and takeover stays
        // crash-only. The recurrence re-arms first — even for a down
        // rack — so the cadence is preserved across crash windows.
        for &r in &beacons {
            let every = cfg.beacon_every(r);
            if every > 0 {
                seen.insert(t + every);
                agenda.schedule_at(
                    VirtualTime::new(t + every),
                    r.index() as u64,
                    FabricEvent::Beacon(r),
                );
            }
            if down.contains(&r) {
                continue;
            }
            if failover.detector.observe_emission(r, failover.clock + t) == ShimHealth::Dead {
                // a shim the detector wrote off is beaconing again:
                // management reverts to it, while its stale epoch view
                // keeps its old 2PC traffic fenced until it adopts the
                // bump
                failover.reinstate(r);
            }
            let epoch = failover.view_of(r);
            for &s in &racks {
                let msg = if t == 0 {
                    ShimMsg::Hello { rack: r, epoch }
                } else {
                    ShimMsg::Heartbeat {
                        rack: r,
                        tick: t,
                        epoch,
                    }
                };
                net.send(t, r, s, msg);
            }
        }

        // phase 4 — adaptive failure detection: silence beyond the
        // thresholds walks a shim Alive → Suspect → Dead. A Dead shim
        // that still holds unplanned work mid-round hands it to the
        // lowest-index live shim under a bumped epoch; its in-flight 2PC
        // stays with the zombie/lease machinery, which already settles
        // it safely.
        for (rack, _old, new) in failover.detector.tick(failover.clock + t) {
            match new {
                ShimHealth::Suspect => {
                    emit(sink, || Event::ShimSuspected {
                        rack: rack.index() as u64,
                    });
                    sink.counter("detector.suspected", 1);
                }
                ShimHealth::Dead => {
                    emit(sink, || Event::ShimDeclaredDead {
                        rack: rack.index() as u64,
                    });
                    sink.counter("detector.declared_dead", 1);
                    let Some(&i) = source_index.get(&rack) else {
                        continue;
                    };
                    if !shims
                        .get(i)
                        .is_some_and(|s| s.down && !s.st.pending.is_empty())
                    {
                        continue;
                    }
                    let succ = shims
                        .iter()
                        .enumerate()
                        .filter(|&(j, s)| j != i && !s.down)
                        .map(|(j, s)| (s.st.rack, j))
                        .min();
                    let Some((succ_rack, j)) = succ else {
                        continue;
                    };
                    let continued =
                        failover.taken_over(rack) && failover.manager_of(rack) == succ_rack;
                    let epoch = failover.take_over(rack, succ_rack);
                    if !continued {
                        emit(sink, || Event::RegionTakenOver {
                            rack: rack.index() as u64,
                            by: succ_rack.index() as u64,
                            epoch,
                        });
                        sink.counter("region.takeovers", 1);
                        report.takeovers += 1;
                    }
                    let moved = match shims.get_mut(i) {
                        Some(s) => std::mem::take(&mut s.st.pending),
                        None => Vec::new(),
                    };
                    if let Some(s) = shims.get_mut(j) {
                        s.st.pending.extend(moved);
                        s.done = false;
                        s.gave_up = true;
                        s.rounds_left = s.rounds_left.max(1);
                    }
                }
                ShimHealth::Alive => {}
            }
        }

        // phase 5 — deliveries: endpoints answer requests, sources absorb
        // replies. Every pending `deliver_at` has a Delivery wake, so the
        // poll happens exactly at each message's delivery tick.
        for (from, to, msg) in net.poll(t) {
            match msg {
                ShimMsg::Hello { rack, .. } | ShimMsg::Heartbeat { rack, .. } => {
                    if let Some(&i) = source_index.get(&to) {
                        if let Some(shim) = shims.get_mut(i) {
                            shim.liveness.observe(rack, t);
                        }
                    }
                }
                ShimMsg::Request {
                    req_id, vm, dest, ..
                } => {
                    let Some(ep) = endpoints.get_mut(to.index()) else {
                        continue;
                    };
                    let hits_before = ep.dedup_hits();
                    let verdict =
                        ep.handle_request(&mut cluster.placement, &cluster.deps, req_id, vm, dest);
                    if ep.dedup_hits() > hits_before {
                        emit(sink, || Event::DuplicateAbsorbed { req: req_id.0 });
                    }
                    let my_epoch = failover.view_of(to);
                    net.send(
                        t,
                        to,
                        from,
                        ShimEndpoint::reply_msg(req_id, verdict, my_epoch),
                    );
                }
                ShimMsg::Prepare {
                    req_id,
                    vm,
                    dest,
                    lease,
                    epoch,
                } => {
                    // epoch fence: a PREPARE from a deposed manager's
                    // term mutates nothing — the sender learns the
                    // current epoch from the reject and must replan
                    if let Some(current) = failover.fence(from, epoch) {
                        report.fenced += 1;
                        emit(sink, || Event::StaleEpochRejected {
                            req: req_id.0,
                            rack: to.index() as u64,
                            stale: epoch,
                            current,
                        });
                        sink.counter("txn.fenced", 1);
                        net.send(
                            t,
                            to,
                            from,
                            ShimMsg::Reject {
                                req_id,
                                reason: RejectReason::StaleEpoch,
                                epoch: current,
                            },
                        );
                        continue;
                    }
                    let Some(ep) = endpoints.get_mut(to.index()) else {
                        continue;
                    };
                    let hits_before = ep.dedup_hits();
                    let journalled_before = ep.journal().len();
                    let reply = ep.handle_prepare(
                        &mut cluster.placement,
                        &cluster.deps,
                        req_id,
                        vm,
                        dest,
                        lease,
                        epoch,
                    );
                    if ep.journal().len() > journalled_before {
                        report.txn_prepared += 1;
                        emit(sink, || Event::TxnPrepared {
                            req: req_id.0,
                            vm: vm.index() as u64,
                            dest_host: dest.index() as u64,
                        });
                        sink.counter("txn.prepared", 1);
                    }
                    if ep.dedup_hits() > hits_before {
                        emit(sink, || Event::DuplicateAbsorbed { req: req_id.0 });
                    }
                    let my_epoch = failover.view_of(to);
                    net.send(
                        t,
                        to,
                        from,
                        ShimEndpoint::reply_2pc_msg(req_id, reply, my_epoch),
                    );
                }
                ShimMsg::PrepareOk { req_id, .. } => {
                    if let Some(&i) = source_index.get(&to) {
                        let Some(shim) = shims.get_mut(i) else {
                            continue;
                        };
                        if let Some(o) = shim.outstanding.get_mut(&req_id) {
                            if o.phase == TxnPhase::Preparing {
                                // vote is in: the transaction will commit,
                                // so the batch made progress
                                o.phase = TxnPhase::Committing;
                                o.attempt = 0;
                                o.deadline = t + cfg.backoff.delay(0, req_id);
                                shim.progressed = true;
                                let dest_rack = cluster.placement.rack_of_host(o.dest);
                                let epoch = failover.view_of(shim.st.rack);
                                net.send(
                                    t,
                                    shim.st.rack,
                                    dest_rack,
                                    ShimMsg::Commit { req_id, epoch },
                                );
                            }
                            // duplicate vote for a committing txn: ignore
                        } else if let Some(mut o) = shim.zombies.remove(&req_id) {
                            // late vote resolves the zombie: the
                            // destination is alive and holds the prepare,
                            // so drive the commit home instead of letting
                            // the lease strand it
                            let dest_rack = cluster.placement.rack_of_host(o.dest);
                            shim.liveness.observe(dest_rack, t);
                            o.phase = TxnPhase::Committing;
                            o.attempt = 0;
                            o.deadline = t + cfg.backoff.delay(0, req_id);
                            shim.outstanding.insert(req_id, o);
                            shim.progressed = true;
                            let epoch = failover.view_of(shim.st.rack);
                            net.send(
                                t,
                                shim.st.rack,
                                dest_rack,
                                ShimMsg::Commit { req_id, epoch },
                            );
                        }
                    }
                }
                ShimMsg::Commit { req_id, epoch } => {
                    if let Some(current) = failover.fence(from, epoch) {
                        report.fenced += 1;
                        emit(sink, || Event::StaleEpochRejected {
                            req: req_id.0,
                            rack: to.index() as u64,
                            stale: epoch,
                            current,
                        });
                        sink.counter("txn.fenced", 1);
                        net.send(
                            t,
                            to,
                            from,
                            ShimMsg::Reject {
                                req_id,
                                reason: RejectReason::StaleEpoch,
                                epoch: current,
                            },
                        );
                        continue;
                    }
                    let Some(ep) = endpoints.get_mut(to.index()) else {
                        continue;
                    };
                    let was_prepared = ep.journal().state(req_id) == Some(TxnState::Prepared);
                    if was_prepared && transfers.is_some() {
                        // journal-level epoch fence first, mirroring
                        // handle_commit: a stale COMMIT falls through to
                        // the normal reject path below
                        let stale = ep.journal().get(req_id).is_some_and(|r| epoch < r.epoch);
                        if !stale {
                            if transfer_meta.contains_key(&req_id) {
                                // duplicate COMMIT while the pre-copy
                                // streams: the ACK flows at completion
                                continue;
                            }
                            let Some(ts) = transfers.as_mut() else {
                                continue;
                            };
                            // hand the migration to the scheduler: the
                            // journal entry stays Prepared under an
                            // extended lease until the last byte lands,
                            // so the periodic sweep cannot abort it
                            let (vm, src_host, dst_host) = match ep.journal().get(req_id) {
                                Some(r) => (r.vm, r.src, r.dst),
                                None => continue,
                            };
                            ep.extend_lease(req_id, u64::MAX);
                            let bytes = cluster.placement.spec(vm).capacity
                                * ts.config().bytes_per_capacity;
                            let src_rack = cluster.placement.rack_of_host(src_host);
                            let dst_rack = cluster.placement.rack_of_host(dst_host);
                            let candidates = if src_rack == dst_rack {
                                Vec::new()
                            } else {
                                sheriff_transfer::route_candidates(
                                    &cluster.dcn.graph,
                                    cluster.dcn.rack_node(src_rack),
                                    cluster.dcn.rack_node(dst_rack),
                                    ts.config().k_paths,
                                )
                            };
                            let spec = sheriff_transfer::TransferSpec {
                                id: req_id.0,
                                vm: vm.index() as u64,
                                dst_rack: to.index(),
                                bytes,
                            };
                            transfer_meta.insert(
                                req_id,
                                TransferMeta {
                                    vm,
                                    src_rack: from,
                                    dst_rack: to,
                                    epoch,
                                },
                            );
                            match ts.submit(t, spec, candidates) {
                                sheriff_transfer::Admission::Started(s) => {
                                    report.transfers_started += 1;
                                    emit(sink, || Event::TransferStarted {
                                        req: s.id,
                                        vm: s.vm,
                                        bytes: s.bytes,
                                        hops: s.hops as u64,
                                        rate: s.rate,
                                        waited: s.waited,
                                    });
                                    sink.counter("transfer.started", 1);
                                    if s.rerouted {
                                        emit(sink, || Event::TransferRerouted {
                                            req: s.id,
                                            vm: s.vm,
                                            hops: s.hops as u64,
                                        });
                                        sink.counter("transfer.rerouted", 1);
                                    }
                                }
                                sheriff_transfer::Admission::Queued => {
                                    sink.counter("transfer.queued", 1);
                                }
                            }
                            continue;
                        }
                    }
                    let reply = ep.handle_commit(req_id, epoch);
                    if was_prepared && reply == TwoPhaseReply::Ack {
                        report.txn_committed += 1;
                        if let Some(rec) = ep.journal().get(req_id) {
                            let vm = rec.vm;
                            emit(sink, || Event::TxnCommitted {
                                req: req_id.0,
                                vm: vm.index() as u64,
                            });
                        }
                        sink.counter("txn.committed", 1);
                    }
                    let my_epoch = failover.view_of(to);
                    net.send(
                        t,
                        to,
                        from,
                        ShimEndpoint::reply_2pc_msg(req_id, reply, my_epoch),
                    );
                }
                ShimMsg::Abort { req_id, epoch } => {
                    // a stale-epoch ABORT is fenced like any other 2PC
                    // mutation; the prepare it targeted drains via its
                    // lease instead
                    if let Some(current) = failover.fence(from, epoch) {
                        report.fenced += 1;
                        emit(sink, || Event::StaleEpochRejected {
                            req: req_id.0,
                            rack: to.index() as u64,
                            stale: epoch,
                            current,
                        });
                        sink.counter("txn.fenced", 1);
                        net.send(
                            t,
                            to,
                            from,
                            ShimMsg::Reject {
                                req_id,
                                reason: RejectReason::StaleEpoch,
                                epoch: current,
                            },
                        );
                        continue;
                    }
                    // a pre-copy in flight means the COMMIT was already
                    // accepted here: the transaction's fate is sealed,
                    // and this is only the source's best-effort give-up
                    // ABORT racing the slow transfer. 2PC forbids
                    // rolling back past COMMIT — let the stream finish;
                    // ground truth settles the move at the source.
                    if transfer_meta.contains_key(&req_id) {
                        sink.counter("transfer.abort_ignored", 1);
                        continue;
                    }
                    let Some(ep) = endpoints.get_mut(to.index()) else {
                        continue;
                    };
                    if let Some((vm, _)) =
                        ep.handle_abort(&mut cluster.placement, &cluster.deps, req_id)
                    {
                        report.txn_aborted += 1;
                        emit(sink, || Event::TxnAborted {
                            req: req_id.0,
                            vm: vm.index() as u64,
                        });
                        sink.counter("txn.aborted", 1);
                    }
                    // fire-and-forget: the source already walked away
                }
                ShimMsg::Ack { req_id, .. } => {
                    if let Some(&i) = source_index.get(&to) {
                        let Some(shim) = shims.get_mut(i) else {
                            continue;
                        };
                        // a late ACK for a given-up request still means
                        // the destination committed: record it. Only the
                        // zombie case counts as batch progress — for a
                        // live transaction the PREPARE-OK already did.
                        let was_zombie = shim.zombies.contains_key(&req_id);
                        if let Some(o) = shim
                            .outstanding
                            .remove(&req_id)
                            .or_else(|| shim.zombies.remove(&req_id))
                        {
                            emit(sink, || Event::AckReceived {
                                req: req_id.0,
                                vm: o.vm.index() as u64,
                            });
                            emit(sink, || Event::MigrationCommitted {
                                vm: o.vm.index() as u64,
                                from_host: o.from.index() as u64,
                                to_host: o.dest.index() as u64,
                                cost: o.cost,
                            });
                            sink.counter("migrations.committed", 1);
                            shim.st.plan.moves.push(Move {
                                vm: o.vm,
                                from: o.from,
                                to: o.dest,
                                cost: o.cost,
                            });
                            shim.st.plan.total_cost += o.cost;
                            if was_zombie {
                                shim.progressed = true;
                            }
                        }
                        // duplicate ACK: already resolved, ignore
                    }
                }
                ShimMsg::Reject {
                    req_id,
                    reason,
                    epoch,
                } => {
                    if let Some(&i) = source_index.get(&to) {
                        if reason == RejectReason::StaleEpoch {
                            // the fencing rack told us our term moved on
                            // (a neighbor took over while we were away):
                            // adopt it so the replan goes out under the
                            // current epoch
                            failover.adopt(to, epoch);
                        }
                        let Some(shim) = shims.get_mut(i) else {
                            continue;
                        };
                        if let Some(o) = shim.outstanding.remove(&req_id) {
                            emit(sink, || Event::RejectReceived {
                                req: req_id.0,
                                vm: o.vm.index() as u64,
                                reason: reject_kind(reason),
                            });
                            sink.counter("migrations.rejected", 1);
                            shim.st.plan.rejected += 1;
                            shim.st.retries += 1;
                            if reason == RejectReason::StaleEpoch {
                                // the pairing was fine — only the term
                                // was stale; replan without excluding it
                                shim.gave_up = true;
                            } else {
                                shim.st.excluded.push((o.vm, o.dest));
                            }
                            shim.st.pending.push(o.vm);
                        } else if let Some(o) = shim.zombies.remove(&req_id) {
                            // late REJECT resolves the zombie: the VM
                            // definitively did not move, so it is safe to
                            // replan it elsewhere
                            emit(sink, || Event::RejectReceived {
                                req: req_id.0,
                                vm: o.vm.index() as u64,
                                reason: reject_kind(reason),
                            });
                            sink.counter("migrations.rejected", 1);
                            shim.st.plan.rejected += 1;
                            shim.st.retries += 1;
                            shim.st.pending.push(o.vm);
                            shim.gave_up = true;
                        }
                    }
                }
            }
        }

        // phase 5b — transfer progress: harvest pre-copies that streamed
        // their last byte (finalize the deferred 2PC commit and ACK the
        // source) and admit queued transfers into freed slots. Runs
        // after deliveries so a COMMIT landing this tick is already
        // submitted, and before lease expiry so a completing commit at
        // the cap tick beats the sweep, mirroring the delivery rule.
        if let Some(ts) = transfers.as_mut() {
            let tick = ts.poll(t);
            for s in &tick.started {
                report.transfers_started += 1;
                emit(sink, || Event::TransferStarted {
                    req: s.id,
                    vm: s.vm,
                    bytes: s.bytes,
                    hops: s.hops as u64,
                    rate: s.rate,
                    waited: s.waited,
                });
                sink.counter("transfer.started", 1);
                if s.rerouted {
                    emit(sink, || Event::TransferRerouted {
                        req: s.id,
                        vm: s.vm,
                        hops: s.hops as u64,
                    });
                    sink.counter("transfer.rerouted", 1);
                }
            }
            for r in &tick.rerouted {
                emit(sink, || Event::TransferRerouted {
                    req: r.id,
                    vm: r.vm,
                    hops: r.hops as u64,
                });
                sink.counter("transfer.rerouted", 1);
            }
            for r in &tick.retried {
                emit(sink, || Event::TransferRetried {
                    req: r.id,
                    vm: r.vm,
                    attempt: r.attempt as u64,
                });
                sink.counter("transfer.retried", 1);
            }
            for r in &tick.resumed {
                emit(sink, || Event::TransferResumed {
                    req: r.id,
                    vm: r.vm,
                    saved: r.saved,
                });
                sink.counter("transfer.resumed", 1);
            }
            for f in &tick.failed {
                // retry budget exhausted: escalate to a clean 2PC abort
                // through the journal — the prepare is rolled back (lease
                // released, source placement restored) and the source is
                // told the migration expired so it can replan the VM
                emit(sink, || Event::TransferFailed {
                    req: f.id,
                    vm: f.vm,
                    attempts: f.attempts as u64,
                });
                sink.counter("transfer.failed", 1);
                let req_id = ReqId(f.id);
                let Some(meta) = transfer_meta.remove(&req_id) else {
                    continue;
                };
                let Some(ep) = endpoints.get_mut(meta.dst_rack.index()) else {
                    continue;
                };
                if let Some((vm, _)) =
                    ep.handle_abort(&mut cluster.placement, &cluster.deps, req_id)
                {
                    report.txn_aborted += 1;
                    emit(sink, || Event::TxnAborted {
                        req: req_id.0,
                        vm: vm.index() as u64,
                    });
                    sink.counter("txn.aborted", 1);
                }
                let my_epoch = failover.view_of(meta.dst_rack);
                net.send(
                    t,
                    meta.dst_rack,
                    meta.src_rack,
                    ShimMsg::Reject {
                        req_id,
                        reason: RejectReason::Expired,
                        epoch: my_epoch,
                    },
                );
            }
            for c in &tick.completions {
                let req_id = ReqId(c.id);
                let Some(meta) = transfer_meta.remove(&req_id) else {
                    continue;
                };
                let Some(ep) = endpoints.get_mut(meta.dst_rack.index()) else {
                    continue;
                };
                // finalize the deferred commit under the epoch the
                // COMMIT originally carried — fencing still applies if
                // the destination's term moved on mid-transfer
                let was_prepared = ep.journal().state(req_id) == Some(TxnState::Prepared);
                let reply = ep.handle_commit(req_id, meta.epoch);
                if was_prepared && reply == TwoPhaseReply::Ack {
                    report.txn_committed += 1;
                    emit(sink, || Event::TxnCommitted {
                        req: req_id.0,
                        vm: meta.vm.index() as u64,
                    });
                    sink.counter("txn.committed", 1);
                }
                emit(sink, || Event::TransferCompleted {
                    req: c.id,
                    vm: c.vm,
                    ticks: c.duration,
                    bandwidth: c.achieved_bw,
                });
                sink.counter("transfer.completed", 1);
                report.transfers_completed += 1;
                report.transfer_durations.push(c.duration);
                let my_epoch = failover.view_of(meta.dst_rack);
                net.send(
                    t,
                    meta.dst_rack,
                    meta.src_rack,
                    ShimEndpoint::reply_2pc_msg(req_id, reply, my_epoch),
                );
            }
        }

        // phase 5c — transfer-plane invariants, probed at every
        // activation: no streaming pre-copy may traverse a failed link,
        // and every active transfer must still hold its Prepared journal
        // entry at the destination. Each breach is flagged once.
        if let Some(ts) = transfers.as_ref() {
            for (id, link) in ts.streaming_on_failed_links() {
                if flagged_on_failed.insert((id, link)) {
                    transfer_audit
                        .violations
                        .push(AuditViolation::TransferOnFailedLink { req: id, link });
                }
            }
            for id in ts.active_ids() {
                let req_id = ReqId(id);
                let prepared = transfer_meta.get(&req_id).is_some_and(|m| {
                    endpoints
                        .get(m.dst_rack.index())
                        .is_some_and(|ep| ep.journal().state(req_id) == Some(TxnState::Prepared))
                });
                if !prepared && flagged_no_prepare.insert(id) {
                    transfer_audit
                        .violations
                        .push(AuditViolation::TransferWithoutPrepare { req: id });
                }
            }
        }

        // phase 6 — lease expiry: a live destination unilaterally aborts
        // prepares whose COMMIT never arrived (a commit delivered this
        // same tick wins — deliveries were processed above). Crashed
        // endpoints expire theirs during journal replay on recovery
        // instead. The earliest pending lease always has a Lease wake.
        for (r, endpoint) in endpoints.iter_mut().enumerate() {
            let rack = RackId::from_index(r);
            if down.contains(&rack) {
                continue;
            }
            for (req, vm) in endpoint.expire_leases(&mut cluster.placement, &cluster.deps, t) {
                report.txn_aborted += 1;
                emit(sink, || Event::TxnAborted {
                    req: req.0,
                    vm: vm.index() as u64,
                });
                sink.counter("txn.aborted", 1);
            }
        }

        // phase 7 — source-shim actions, in rack order for determinism.
        // Hosts absorbing an in-flight pre-copy (PREPARE reserved the VM
        // there, so `host_of` points at the destination while the stream
        // runs) take no additional arrivals this window: Eqn. 1 prices
        // moves independently, which only holds across distinct moves.
        let hot_hosts: BTreeSet<HostId> = transfers
            .as_ref()
            .map(|ts| {
                ts.in_flight_vms()
                    .into_iter()
                    .map(|v| VmId::from_index(v as usize))
                    .filter(|vm| vm.index() < cluster.placement.vm_count())
                    .map(|vm| cluster.placement.host_of(vm))
                    .collect()
            })
            .unwrap_or_default();
        for shim in &mut shims {
            if shim.done || shim.down {
                continue;
            }
            if !shim.started {
                if t >= hello_window && t >= shim.resume_at {
                    if shim.rounds_left > 0 {
                        shim.started = true;
                        fabric_plan_and_send(
                            shim,
                            cluster,
                            metric,
                            &sim,
                            &mut net,
                            t,
                            cfg,
                            failover,
                            &hot_hosts,
                            &mut report,
                            sink,
                        );
                    } else if shim.zombies.is_empty() {
                        shim.done = true;
                    } else {
                        // out of planning rounds but still owed verdicts
                        shim.started = true;
                    }
                }
                continue;
            }

            // expire deadlines: retransmit with backoff, then give up and
            // presume the destination dead
            let expired: Vec<ReqId> = shim
                .outstanding
                .iter()
                .filter(|(_, o)| o.deadline <= t)
                .map(|(&id, _)| id)
                .collect();
            for req_id in expired {
                report.timeouts += 1;
                let attempts_left = match shim.outstanding.get_mut(&req_id) {
                    Some(o) => {
                        emit(sink, || Event::RequestTimeout {
                            req: req_id.0,
                            attempt: o.attempt as u64 + 1,
                        });
                        sink.counter("net.timeouts", 1);
                        o.attempt + 1 < cfg.backoff.max_attempts
                    }
                    None => continue,
                };
                if attempts_left {
                    let Some(o) = shim.outstanding.get_mut(&req_id) else {
                        continue;
                    };
                    o.attempt += 1;
                    o.deadline = t + cfg.backoff.delay(o.attempt, req_id);
                    report.resends += 1;
                    emit(sink, || Event::RequestResent {
                        req: req_id.0,
                        attempt: o.attempt as u64 + 1,
                    });
                    sink.counter("net.resends", 1);
                    let my_epoch = failover.view_of(shim.st.rack);
                    let msg = match o.phase {
                        TxnPhase::Preparing => ShimMsg::Prepare {
                            req_id,
                            vm: o.vm,
                            dest: o.dest,
                            lease: o.lease,
                            epoch: my_epoch,
                        },
                        TxnPhase::Committing => ShimMsg::Commit {
                            req_id,
                            epoch: my_epoch,
                        },
                    };
                    let dest_rack = cluster.placement.rack_of_host(o.dest);
                    net.send(t, shim.st.rack, dest_rack, msg);
                } else {
                    // give up: presume the destination dead — but a stale
                    // copy of the request may still commit there, so the
                    // VM's fate is unknown. Park it as a zombie and keep
                    // listening for a late verdict within the patience
                    // window; never replan a VM of unknown fate.
                    let Some(mut o) = shim.outstanding.remove(&req_id) else {
                        continue;
                    };
                    let dest_rack = cluster.placement.rack_of_host(o.dest);
                    shim.liveness.presume_dead(dest_rack);
                    if !shim.degraded {
                        emit(sink, || Event::ShimDegraded {
                            rack: shim.st.rack.index() as u64,
                        });
                    }
                    shim.degraded = true;
                    shim.st.excluded.push((o.vm, o.dest));
                    o.deadline = t + patience;
                    shim.zombies.insert(req_id, o);
                }
            }

            // zombies past their patience window stay unresolved; the
            // report assembly settles them against ground truth. A
            // best-effort ABORT lets the destination release a prepare
            // early instead of waiting out its lease.
            let expired: Vec<ReqId> = shim
                .zombies
                .iter()
                .filter(|(_, o)| o.deadline <= t)
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                let Some(o) = shim.zombies.remove(&id) else {
                    continue;
                };
                let dest_rack = cluster.placement.rack_of_host(o.dest);
                let epoch = failover.view_of(shim.st.rack);
                net.send(
                    t,
                    shim.st.rack,
                    dest_rack,
                    ShimMsg::Abort { req_id: id, epoch },
                );
                shim.unresolved.push(o);
            }

            // batch resolved once every PREPARE has its vote: replan while
            // the commits drain (their placement effect is already
            // visible), or finish when truly idle
            let preparing = shim
                .outstanding
                .values()
                .any(|o| o.phase == TxnPhase::Preparing);
            if !preparing {
                let replan = !shim.st.pending.is_empty()
                    && shim.rounds_left > 0
                    && (shim.progressed || shim.gave_up);
                if replan {
                    fabric_plan_and_send(
                        shim,
                        cluster,
                        metric,
                        &sim,
                        &mut net,
                        t,
                        cfg,
                        failover,
                        &hot_hosts,
                        &mut report,
                        sink,
                    );
                } else if shim.outstanding.is_empty() && shim.zombies.is_empty() {
                    shim.done = true;
                }
            }
        }

        // termination — the round ends when every source shim settled; a
        // crashed shim only holds the round open while a recovery is
        // still scheduled, and a scheduled heal holds it open while any
        // parked shim still has work the heal would wake it for. Every
        // predicate flip here lands on an activated tick (Recover and
        // Heal are events; a partition *start* only delays settlement),
        // so checking at activations only is exact.
        let heal_pending = cfg
            .partitions
            .iter()
            .any(|p| p.start_at <= t && p.heal_at.is_some_and(|h| h > t));
        let all_settled = shims.iter().all(|s| {
            s.done
                || (s.down
                    && !schedule
                        .iter()
                        .any(|w| w.rack == s.st.rack && w.recover_at.is_some_and(|r| r > t)))
        }) && !(heal_pending
            && shims
                .iter()
                .any(|s| s.done && !s.down && !s.st.pending.is_empty()))
            // a streaming or queued pre-copy holds the round open: its
            // completion still has a commit, an ACK and a Move to land
            && transfers.as_ref().is_none_or(|ts| ts.is_idle());
        if all_settled {
            break;
        }

        // derived activations: make sure every tick at which any phase
        // has due work is on the agenda (the activation-time superset
        // invariant). All of these recompute each activation; `seen`
        // dedupes repeats.
        if let Some(d) = net.next_delivery() {
            schedule_wake(&mut agenda, &mut seen, d.max(t + 1), WakeReason::Delivery);
        }
        if let Some(abs) = failover.detector.next_transition_after(failover.clock + t) {
            let local = abs.saturating_sub(failover.clock);
            schedule_wake(
                &mut agenda,
                &mut seen,
                local.max(t + 1),
                WakeReason::Detector,
            );
        }
        let next_lease = endpoints
            .iter()
            .enumerate()
            .filter(|(r, _)| !down.contains(&RackId::from_index(*r)))
            .filter_map(|(_, e)| e.next_lease())
            .min();
        if let Some(l) = next_lease {
            schedule_wake(&mut agenda, &mut seen, l.max(t + 1), WakeReason::Lease);
        }
        if let Some(ts) = transfers.as_ref() {
            if let Some(done_at) = ts.next_event_time() {
                schedule_wake(
                    &mut agenda,
                    &mut seen,
                    done_at.max(t + 1),
                    WakeReason::Transfer,
                );
            } else if !ts.is_idle() {
                // nothing running but transfers are queued (e.g. the
                // running set was just cancelled): poll next tick so
                // admission can promote them
                schedule_wake(&mut agenda, &mut seen, t + 1, WakeReason::Transfer);
            }
        }
        for shim in &shims {
            if shim.done || shim.down || shim.started {
                continue;
            }
            let gate = hello_window.max(shim.resume_at).max(t + 1);
            schedule_wake(&mut agenda, &mut seen, gate, WakeReason::ShimStart);
        }
        // the timeout wake is the one cancellable event: deadlines move
        // every resend, so a single wake tracks the earliest one and is
        // cancelled (a no-op if it already fired) whenever a nearer
        // deadline appears
        let next_deadline = shims
            .iter()
            .filter(|s| !s.done && !s.down)
            .flat_map(|s| {
                s.outstanding
                    .values()
                    .chain(s.zombies.values())
                    .map(|o| o.deadline)
            })
            .min();
        if let Some(d) = next_deadline {
            let d = d.max(t + 1);
            match timeout_wake {
                Some((cur, _)) if d >= cur => {}
                prev => {
                    if let Some((_, id)) = prev {
                        agenda.cancel(id);
                    }
                    timeout_wake = if seen.contains(&d) {
                        None
                    } else {
                        Some((
                            d,
                            agenda.schedule_at(
                                VirtualTime::new(d),
                                WAKE_ACTOR,
                                FabricEvent::Wake(WakeReason::Timeout),
                            ),
                        ))
                    };
                }
            }
        }

        // hop to the next activation; past the tick cap the round is
        // abandoned exactly as the per-tick loop abandoned it
        match agenda.next_time() {
            Some(nt) if nt.get() <= cfg.max_ticks => t = nt.get(),
            _ => {
                t = cfg.max_ticks.saturating_add(1);
                break;
            }
        }
    }

    // no transaction outlives the round: sweep every journal and abort
    // whatever is still `Prepared` (sources that walked away, schedules
    // that never recovered, the tick cap). Must happen before the
    // ground-truth settlement below so a half-done prepare can't be
    // mistaken for a committed move.
    for ep in &mut endpoints {
        for (req, vm) in ep.expire_leases(&mut cluster.placement, &cluster.deps, u64::MAX) {
            report.txn_aborted += 1;
            emit(sink, || Event::TxnAborted {
                req: req.0,
                vm: vm.index() as u64,
            });
            sink.counter("txn.aborted", 1);
        }
    }

    // no VM may be managed by two shims at once: across takeovers,
    // partitions, and heals the pending / in-flight / unknown-fate sets
    // of different shims must stay disjoint (audited before settlement
    // collapses them against ground truth)
    let manager_audit = audit_managers(shims.iter().map(|s| {
        (
            s.st.rack,
            s.st.pending
                .iter()
                .copied()
                .chain(s.outstanding.values().map(|o| o.vm))
                .chain(s.zombies.values().map(|o| o.vm))
                .chain(s.unresolved.iter().map(|o| o.vm))
                .collect::<Vec<_>>(),
        )
    }));

    // settle unknown fates against ground truth: the simulator (unlike
    // the shims) can see whether an unacknowledged request actually
    // committed at its destination. Requests cut off by the tick cap are
    // settled the same way.
    for shim in &mut shims {
        let leftovers: Vec<Outstanding> = shim
            .unresolved
            .drain(..)
            .chain(std::mem::take(&mut shim.outstanding).into_values())
            .chain(std::mem::take(&mut shim.zombies).into_values())
            .collect();
        for o in leftovers {
            if cluster.placement.host_of(o.vm) == o.dest {
                emit(sink, || Event::MigrationCommitted {
                    vm: o.vm.index() as u64,
                    from_host: o.from.index() as u64,
                    to_host: o.dest.index() as u64,
                    cost: o.cost,
                });
                sink.counter("migrations.committed", 1);
                shim.st.plan.moves.push(Move {
                    vm: o.vm,
                    from: o.from,
                    to: o.dest,
                    cost: o.cost,
                });
                shim.st.plan.total_cost += o.cost;
            } else {
                emit(sink, || Event::MigrationFailed {
                    vm: o.vm.index() as u64,
                    rack: shim.st.rack.index() as u64,
                });
                sink.counter("migrations.failed", 1);
                shim.st.pending.push(o.vm);
            }
        }
    }

    report.ticks = t.min(cfg.max_ticks);
    // the detector's clock spans rounds: silence keeps accruing across
    // round boundaries, so a crashed shim is eventually declared Dead
    // even when every individual round is short
    failover.clock += report.ticks + 1;
    report.drops = net.stats.dropped;
    report.dedup_hits = endpoints.iter().map(|e| e.dedup_hits()).sum();
    if let Some(ts) = &transfers {
        report.transfer_reroutes = ts.reroutes();
        report.transfer_queue_delays = ts.queue_delays();
        report.transfer_peak_sharing = ts.peak_link_sharing();
        report.transfer_stalls = ts.stalls();
        report.transfer_retries = ts.retries();
        report.transfer_failures = ts.failures() + rack_failed_transfers;
        report.resumed_bytes_saved = ts.resumed_bytes_saved();
        // stall-duration distribution: total ticks spent stalled (the
        // per-bucket shape stays queryable on the scheduler's histogram)
        let hist = ts.stall_histogram();
        if hist.count() > 0 {
            sink.counter("transfer.stalled_ticks", hist.sum() as u64);
        }
    }
    sink.counter("net.sent", net.stats.sent as u64);
    sink.counter("net.delivered", net.stats.delivered as u64);
    sink.counter("net.dropped", net.stats.dropped as u64);
    sink.counter("net.duplicated", net.stats.duplicated as u64);
    sink.counter("net.reordered", net.stats.reordered as u64);
    sink.counter("net.blackholed", net.stats.blackholed as u64);
    sink.counter("net.partitioned", net.stats.partitioned as u64);
    sink.counter("net.dedup_hits", report.dedup_hits as u64);
    for shim in shims {
        let mut plan = shim.st.plan;
        let mut pending = shim.st.pending;
        pending.sort_unstable();
        pending.dedup();
        plan.unplaced.extend(pending);
        report.plan.absorb(plan);
        report.retries += shim.st.retries;
        if shim.degraded {
            report.degraded_shims += 1;
        }
    }
    report.audit = audit_placement(&cluster.placement, &cluster.deps);
    report.audit.merge(manager_audit);
    report.audit.merge(transfer_audit);
    report.audit.merge(audit_moves(
        &cluster.placement,
        report.plan.moves.iter().map(|m| (m.vm, m.to)),
    ));
    report.audit.merge(audit_journals(
        &cluster.placement,
        endpoints.iter().map(|e| e.journal()),
    ));
    report
}

/// One fabric planning round: rebuild the slot list from live racks
/// (degradation ladder step 1; the own rack is always kept — step 2),
/// run the matching, and send a REQUEST per assignment.
#[allow(clippy::too_many_arguments)]
fn fabric_plan_and_send<S: EventSink + ?Sized>(
    shim: &mut FabricShim,
    cluster: &Cluster,
    metric: &RackMetric,
    sim: &SimConfig,
    net: &mut SimNet,
    now: u64,
    cfg: &FabricConfig,
    failover: &RegionFailover,
    hot_hosts: &BTreeSet<HostId>,
    report: &mut DistributedReport,
    sink: &mut S,
) {
    shim.rounds_left -= 1;
    shim.progressed = false;
    shim.gave_up = false;

    let live_region: Vec<RackId> = shim
        .region
        .iter()
        .copied()
        .filter(|&r| shim.liveness.alive(r, now))
        .collect();
    // an active partition cuts part of the region off *right now*: plan
    // around it immediately (degraded local handling, own rack always
    // kept) instead of waiting for the liveness deadline to notice
    let reachable: Vec<RackId> = live_region
        .iter()
        .copied()
        .filter(|&r| !net.cut(now, shim.st.rack, r))
        .collect();
    // degraded-mode accounting keys off the ground-truth cut over the
    // whole region: liveness may have aged the far side out already (its
    // beacons stopped arriving the moment the cut opened), but the shim
    // is still planning around a partition, not a crash
    let cut_off = shim.region.iter().any(|&r| net.cut(now, shim.st.rack, r));
    if cut_off && !shim.part_degraded {
        shim.part_degraded = true;
        report.partition_degraded += 1;
        sink.counter("region.partition_degraded", 1);
    }
    if reachable.len() < shim.region.len() {
        if !shim.degraded {
            emit(sink, || Event::ShimDegraded {
                rack: shim.st.rack.index() as u64,
            });
        }
        shim.degraded = true;
    }
    shim.st.slots = region_slots(&cluster.dcn.inventory, &reachable, shim.st.rack);

    let pending = std::mem::take(&mut shim.st.pending);
    let (proposals, unassigned, space) = plan_proposals(
        &cluster.placement,
        &cluster.deps,
        metric,
        sim,
        &pending,
        &shim.st.slots,
        &shim.st.excluded,
        hot_hosts,
    );
    shim.st.plan.search_space += space;
    shim.st.pending = unassigned;
    emit(sink, || Event::PlanComputed {
        rack: shim.st.rack.index() as u64,
        proposals: proposals.len() as u64,
        unassigned: shim.st.pending.len() as u64,
        search_space: space as u64,
    });

    for p in proposals {
        let req_id = ReqId::new(shim.st.rack, shim.st.seq);
        shim.st.seq += 1;
        emit(sink, || Event::RequestSent {
            req: req_id.0,
            vm: p.vm.index() as u64,
            dest_host: p.dest.index() as u64,
            attempt: 1,
        });
        let from = cluster.placement.host_of(p.vm);
        let dest_rack = cluster.placement.rack_of_host(p.dest);
        let lease = now + cfg.prepare_lease;
        shim.outstanding.insert(
            req_id,
            Outstanding {
                vm: p.vm,
                from,
                dest: p.dest,
                cost: p.cost,
                attempt: 0,
                deadline: now + cfg.backoff.delay(0, req_id),
                phase: TxnPhase::Preparing,
                lease,
            },
        );
        net.send(
            now,
            shim.st.rack,
            dest_rack,
            ShimMsg::Prepare {
                req_id,
                vm: p.vm,
                dest: p.dest,
                lease,
                epoch: failover.view_of(shim.st.rack),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::ClusterConfig;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use sheriff_obs::{NullSink, RingRecorder};

    fn cluster(seed: u64) -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(8));
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 3.0,
                seed,
                ..ClusterConfig::default()
            },
            dcn_sim::SimConfig::paper(),
        )
    }

    fn alert_values(c: &Cluster) -> Vec<f64> {
        c.placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect()
    }

    fn assert_capacity_ok(c: &Cluster) {
        for h in 0..c.placement.host_count() {
            let h = HostId::from_index(h);
            assert!(
                c.placement.used_capacity(h) <= c.placement.host_capacity(h) + 1e-9,
                "host {h} over capacity"
            );
        }
    }

    fn assert_deps_ok(c: &Cluster) {
        for vm in c.placement.vm_ids() {
            let host = c.placement.host_of(vm);
            for &other in c.placement.vms_on(host) {
                if other != vm {
                    assert!(
                        !c.deps.dependent(vm, other),
                        "dependent VMs {vm} and {other} co-located on {host}"
                    );
                }
            }
        }
    }

    #[test]
    fn reliable_fabric_reproduces_threaded_plan_exactly() {
        let mut threaded = cluster(26);
        let mut fabric = cluster(26);
        let metric = RackMetric::build(&threaded.dcn, &threaded.sim);
        let alerts = threaded.fraction_alerts(0.10, 0);
        let vals = alert_values(&threaded);

        let cfg = FabricConfig::default();
        assert!(cfg.faults.is_reliable());
        let rt = crate::distributed::distributed_round_obs(
            &mut threaded,
            &metric,
            &alerts,
            &vals,
            cfg.max_retry,
            &mut NullSink,
        );
        let rf = fabric_round_obs(&mut fabric, &metric, &alerts, &vals, &cfg, &mut NullSink);

        assert_eq!(rt.plan.moves.len(), rf.plan.moves.len());
        for (a, b) in rt.plan.moves.iter().zip(&rf.plan.moves) {
            assert_eq!((a.vm, a.from, a.to), (b.vm, b.from, b.to));
            assert!((a.cost - b.cost).abs() < 1e-12);
        }
        assert!((rt.plan.total_cost - rf.plan.total_cost).abs() < 1e-9);
        assert_eq!(rt.plan.rejected, rf.plan.rejected);
        assert_eq!(rt.plan.unplaced, rf.plan.unplaced);
        for vm in threaded.placement.vm_ids() {
            assert_eq!(threaded.placement.host_of(vm), fabric.placement.host_of(vm));
        }
        // a perfect channel exercises none of the robustness machinery
        assert_eq!(rf.drops, 0);
        assert_eq!(rf.timeouts, 0);
        assert_eq!(rf.resends, 0);
        assert_eq!(rf.dedup_hits, 0);
        assert_eq!(rf.degraded_shims, 0);
        assert!(!rt.plan.moves.is_empty(), "vacuous equivalence");
        // every move travelled the full PREPARE -> COMMIT -> ACK path and
        // nothing was left half-done
        assert_eq!(rf.txn_committed, rf.plan.moves.len());
        assert_eq!(rf.txn_aborted, 0);
        assert_eq!(rf.recoveries, 0);
        assert!(rf.audit.is_clean(), "{}", rf.audit);
        assert!(rt.audit.is_clean(), "{}", rt.audit);
    }

    #[test]
    fn lossy_fabric_with_crash_completes_and_degrades_gracefully() {
        let mut c = cluster(27);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        // crash the shim of the first alerted rack: its own alert goes
        // unserved and every other shim must route around it
        let crashed = alerts[0].rack;
        let cfg = FabricConfig {
            faults: ChannelFaults {
                drop: 0.10,
                ..ChannelFaults::lossy(0.10)
            },
            seed: 99,
            crashed: vec![CrashWindow::whole_round(crashed)],
            ..FabricConfig::default()
        };
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut NullSink);

        assert!(
            report.ticks < cfg.max_ticks,
            "round wedged until the tick cap"
        );
        assert!(
            !report.plan.moves.is_empty(),
            "lossy fabric still made progress"
        );
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
        assert_eq!(report.crashed_shims, 1);
        assert!(report.drops > 0, "10% loss must drop something");
        assert!(report.timeouts > 0, "drops must surface as timeouts");
        assert!(report.resends > 0, "timeouts must trigger retransmissions");
        assert!(
            report.degraded_shims > 0,
            "crash must degrade someone's region"
        );
    }

    #[test]
    fn duplicated_requests_never_double_apply() {
        let mut c = cluster(28);
        let initial = c.placement.clone();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let cfg = FabricConfig {
            faults: ChannelFaults {
                duplicate: 0.5,
                ..ChannelFaults::reliable()
            },
            seed: 5,
            ..FabricConfig::default()
        };
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut NullSink);
        assert!(
            report.dedup_hits > 0,
            "50% duplication must hit the dedup log"
        );
        // chaining the recorded moves from the initial placement lands
        // exactly on the final placement: every ACKed move applied once
        let mut loc: std::collections::HashMap<VmId, HostId> = c
            .placement
            .vm_ids()
            .map(|vm| (vm, initial.host_of(vm)))
            .collect();
        for m in &report.plan.moves {
            assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
            loc.insert(m.vm, m.to);
        }
        for vm in c.placement.vm_ids() {
            assert_eq!(loc[&vm], c.placement.host_of(vm));
        }
        assert_capacity_ok(&c);
    }

    #[test]
    fn fabric_with_all_shims_crashed_is_a_noop() {
        let mut c = cluster(29);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.05, 0);
        let vals = alert_values(&c);
        let before = c.utilization_stddev();
        let crashed: Vec<RackId> = {
            let mut r: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
            r.sort_unstable();
            r.dedup();
            r
        };
        let cfg = FabricConfig {
            crashed: crashed
                .iter()
                .copied()
                .map(CrashWindow::whole_round)
                .collect(),
            ..FabricConfig::default()
        };
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut NullSink);
        assert_eq!(report.shims, 0);
        assert_eq!(report.crashed_shims, crashed.len());
        assert!(report.plan.moves.is_empty());
        assert_eq!(c.utilization_stddev(), before);
    }

    #[test]
    fn mid_round_source_crash_recovers_and_audits_clean() {
        let mut c = cluster(31);
        let initial = c.placement.clone();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        // kill an alerted source shim between its PREPARE burst (applied
        // at t = 3 on the destinations) and the COMMIT phase, then
        // recover it: the orphaned prepares must lease-abort cleanly and
        // the recovered shim rejoins planning
        let victim = alerts[0].rack;
        let cfg = FabricConfig {
            crashed: vec![CrashWindow::during(victim, 4, 12)],
            ..FabricConfig::default()
        };
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut NullSink);

        assert!(report.ticks < cfg.max_ticks, "round wedged");
        assert_eq!(report.recoveries, 1);
        assert_eq!(
            report.crashed_shims, 0,
            "a recovering shim is not written off"
        );
        assert!(report.audit.is_clean(), "{}", report.audit);
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
        // exactly-once despite the crash: replaying the recorded moves
        // from the initial placement reproduces the final one
        let mut loc: std::collections::HashMap<VmId, HostId> = c
            .placement
            .vm_ids()
            .map(|vm| (vm, initial.host_of(vm)))
            .collect();
        for m in &report.plan.moves {
            assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
            loc.insert(m.vm, m.to);
        }
        for vm in c.placement.vm_ids() {
            assert_eq!(loc[&vm], c.placement.host_of(vm));
        }
    }

    #[test]
    fn mid_round_source_crash_settles_without_zombie_txns() {
        let mut c = cluster(32);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        // kill an alerted source shim right after its PREPAREs land and
        // never bring it back: its prepares must lease-abort or settle,
        // never stay half-done
        let victim = alerts[0].rack;
        let cfg = FabricConfig {
            crashed: vec![CrashWindow {
                rack: victim,
                crash_at: 4,
                recover_at: None,
            }],
            ..FabricConfig::default()
        };
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut NullSink);
        assert!(report.ticks < cfg.max_ticks, "round wedged");
        assert!(report.audit.is_clean(), "{}", report.audit);
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
    }

    #[test]
    fn sustained_crash_takeover_then_zombie_is_fenced() {
        let mut c = cluster(33);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let victim = alerts[0].rack;
        let mut failover = RegionFailover::default();
        let crash_cfg = FabricConfig {
            crashed: vec![CrashWindow::whole_round(victim)],
            ..FabricConfig::default()
        };
        // the victim stays dark across rounds: the detector walks it to
        // Dead and exactly one takeover (epoch bump) follows, however
        // many further rounds it stays dead
        let mut takeovers = 0;
        for _ in 0..6 {
            let vals = alert_values(&c);
            let r = fabric_round_failover_obs(
                &mut c,
                &metric,
                &alerts,
                &vals,
                &crash_cfg,
                &mut failover,
                &mut NullSink,
            );
            assert!(r.audit.is_clean(), "{}", r.audit);
            takeovers += r.takeovers;
        }
        assert_eq!(takeovers, 1, "one manager change, one epoch bump");
        assert_eq!(failover.epoch_of(victim), 1);
        assert!(failover.taken_over(victim));
        assert_eq!(
            failover.view_of(victim),
            0,
            "the deposed shim never heard the bump"
        );

        // the shim returns: its first PREPARE burst still carries epoch
        // 0, gets fenced, and the reject teaches it the current epoch
        let cfg = FabricConfig::default();
        let vals = alert_values(&c);
        let r = fabric_round_failover_obs(
            &mut c,
            &metric,
            &alerts,
            &vals,
            &cfg,
            &mut failover,
            &mut NullSink,
        );
        assert!(r.fenced > 0, "zombie PREPAREs must be fenced");
        assert_eq!(failover.view_of(victim), 1, "reject taught the epoch");
        assert!(
            !failover.taken_over(victim),
            "beaconing again reinstates management"
        );
        assert!(r.audit.is_clean(), "{}", r.audit);
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
    }

    #[test]
    fn crash_recover_with_concurrent_takeover_never_double_manages() {
        let mut c = cluster(36);
        let initial = c.placement.clone();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let victim = alerts[0].rack;
        // an aggressive detector (dead after ~6 ticks of silence)
        // declares the crashed shim Dead mid-round; its unplanned work
        // moves to a successor under a bumped epoch, and the shim then
        // recovers into the takeover — the regression this guards is two
        // shims both claiming the victim's VMs
        let mut failover = RegionFailover::new(2, 4);
        let cfg = FabricConfig {
            crashed: vec![CrashWindow::during(victim, 1, 20)],
            ..FabricConfig::default()
        };
        let report = fabric_round_failover_obs(
            &mut c,
            &metric,
            &alerts,
            &vals,
            &cfg,
            &mut failover,
            &mut NullSink,
        );
        assert!(report.ticks < cfg.max_ticks, "round wedged");
        assert_eq!(report.takeovers, 1, "mid-round takeover must fire");
        assert_eq!(failover.epoch_of(victim), 1);
        assert_eq!(report.recoveries, 1);
        // the manager audit (merged into report.audit) proves no VM was
        // pending/outstanding at two shims at once
        assert!(report.audit.is_clean(), "{}", report.audit);
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
        // exactly-once despite crash + takeover: replaying the recorded
        // moves from the initial placement reproduces the final one
        let mut loc: std::collections::HashMap<VmId, HostId> = c
            .placement
            .vm_ids()
            .map(|vm| (vm, initial.host_of(vm)))
            .collect();
        for m in &report.plan.moves {
            assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
            loc.insert(m.vm, m.to);
        }
        for vm in c.placement.vm_ids() {
            assert_eq!(loc[&vm], c.placement.host_of(vm));
        }
    }

    #[test]
    fn partition_degrades_minority_without_takeover_or_fencing() {
        let mut c = cluster(34);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let isolated = alerts[0].rack;
        let cfg = FabricConfig {
            partitions: vec![PartitionWindow::new(vec![isolated], 0, Some(24))],
            ..FabricConfig::default()
        };
        let mut failover = RegionFailover::default();
        let report = fabric_round_failover_obs(
            &mut c,
            &metric,
            &alerts,
            &vals,
            &cfg,
            &mut failover,
            &mut NullSink,
        );
        assert!(
            report.partition_degraded > 0,
            "the cut shim must notice its shrunken region"
        );
        // emission-based detection: a partitioned-but-alive shim keeps
        // beaconing, so the cut never looks like a crash
        assert_eq!(report.takeovers, 0, "a partition is not a crash");
        assert_eq!(report.fenced, 0, "no epoch bumped, nothing to fence");
        assert_eq!(report.crashed_shims, 0);
        for r in 0..c.dcn.rack_count() {
            assert_eq!(failover.epoch_of(RackId::from_index(r)), 0);
        }
        assert!(report.audit.is_clean(), "{}", report.audit);
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
    }

    #[test]
    fn partitioned_lossy_fabric_is_deterministic() {
        let run = || {
            let mut c = cluster(35);
            let metric = RackMetric::build(&c.dcn, &c.sim);
            let alerts = c.fraction_alerts(0.10, 0);
            let vals = alert_values(&c);
            let cfg = FabricConfig {
                faults: ChannelFaults::lossy(0.05),
                seed: 41,
                partitions: vec![PartitionWindow::new(vec![alerts[0].rack], 2, Some(20))],
                ..FabricConfig::default()
            };
            let mut failover = RegionFailover::default();
            let report = fabric_round_failover_obs(
                &mut c,
                &metric,
                &alerts,
                &vals,
                &cfg,
                &mut failover,
                &mut NullSink,
            );
            let placement: Vec<HostId> = c
                .placement
                .vm_ids()
                .map(|vm| c.placement.host_of(vm))
                .collect();
            (report, placement)
        };
        let (r1, p1) = run();
        let (r2, p2) = run();
        assert_eq!(p1, p2, "same seed, same placement");
        assert!(!p1.is_empty());
        assert_eq!(r1.plan.moves.len(), r2.plan.moves.len());
        for (a, b) in r1.plan.moves.iter().zip(&r2.plan.moves) {
            assert_eq!((a.vm, a.from, a.to), (b.vm, b.from, b.to));
        }
        assert_eq!(
            (r1.drops, r1.resends, r1.ticks, r1.partition_degraded),
            (r2.drops, r2.resends, r2.ticks, r2.partition_degraded)
        );
        assert_eq!(r1.reconciliations, r2.reconciliations);
    }

    #[test]
    fn tighter_beacon_interval_detects_crash_before_recovery() {
        // Regression for heartbeat emission timing: beacons are scheduled
        // events at each rack's own interval, so watching one rack at a
        // tighter cadence shortens the adaptive detector's silence
        // thresholds for that rack alone and a mid-round crash is
        // declared before the shim recovers.
        //
        // The victim crashes mid-negotiation at t = 5 and recovers at
        // t = 20 under a detector with a dead floor of 6 ticks. On the
        // default 8-tick cadence only the t = 0 Hello lands before the
        // crash, the mean interval stays at the 8-tick hint, and Dead
        // needs max(6, 3·8) + 1 = 25 ticks of silence (t = 25) — the
        // post-recovery beacon at t = 24 resets the clock first, so no
        // death is ever declared. Beaconing the victim every 2 ticks
        // lands emissions at t = 0, 2, 4, driving the mean to 2: Dead
        // fires max(6, 3·2) + 1 = 7 ticks after the t = 4 emission,
        // i.e. t = 11, comfortably before recovery.
        let run = |tight: bool| {
            let mut c = cluster(26);
            let metric = RackMetric::build(&c.dcn, &c.sim);
            let alerts = c.fraction_alerts(0.10, 0);
            let vals = alert_values(&c);
            let victim = alerts[0].rack;
            let mut cfg = FabricConfig {
                crashed: vec![CrashWindow::during(victim, 5, 20)],
                ..FabricConfig::default()
            };
            if tight {
                cfg = cfg.with_beacon_interval(victim, 2);
            }
            let mut failover = RegionFailover::new(8, 6);
            let mut rec = RingRecorder::new(65536);
            let report = fabric_round_failover_obs(
                &mut c,
                &metric,
                &alerts,
                &vals,
                &cfg,
                &mut failover,
                &mut rec,
            );
            assert!(report.audit.is_clean(), "{}", report.audit);
            assert_eq!(report.recoveries, 1, "the victim must come back");
            (rec.count_kind("shim_declared_dead"), c)
        };
        let (slow_deaths, _) = run(false);
        assert_eq!(
            slow_deaths, 0,
            "default cadence cannot notice a 15-tick crash"
        );
        let (fast_deaths, c) = run(true);
        assert!(
            fast_deaths >= 1,
            "a 2-tick beacon interval must surface the crash before recovery"
        );
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
    }

    #[test]
    fn per_rack_alert_checks_fire_at_distinct_virtual_times() {
        // two alerted racks rescan for fresh pre-alerts at their own
        // intervals: within a single round their AlertCheckFired events
        // land at different virtual times — behavior a per-round phase
        // cannot express
        let mut c = cluster(37);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let mut racks: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        assert!(racks.len() >= 2, "need two alerted racks");
        let (a, b) = (racks[0], racks[1]);
        let cfg = FabricConfig::default()
            .with_alert_check(a, 3)
            .with_alert_check(b, 5);
        let mut rec = RingRecorder::new(65536);
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut rec);
        let mut ticks_a: Vec<u64> = Vec::new();
        let mut ticks_b: Vec<u64> = Vec::new();
        for e in rec.to_vec() {
            if let Event::AlertCheckFired { rack, tick, .. } = e {
                if rack == a.index() as u64 {
                    ticks_a.push(tick);
                } else if rack == b.index() as u64 {
                    ticks_b.push(tick);
                }
            }
        }
        assert!(
            !ticks_a.is_empty() && !ticks_b.is_empty(),
            "both intervals must fire within the round (ticks={})",
            report.ticks
        );
        assert!(ticks_a.iter().all(|t| t % 3 == 0 && *t <= report.ticks));
        assert!(ticks_b.iter().all(|t| t % 5 == 0 && *t <= report.ticks));
        assert!(
            ticks_a.iter().any(|t| !ticks_b.contains(t)),
            "the two racks' checks must fire at distinct virtual times"
        );
        assert!(report.audit.is_clean(), "{}", report.audit);
    }

    #[test]
    fn alert_checks_adopt_fresh_victims_mid_round() {
        // a single rack re-scanning at a tight interval keeps adopting
        // whatever PRIORITY surfaces on the evolving placement; the
        // checks never double-adopt a VM the shim already manages, the
        // round still terminates, and every invariant audit stays clean
        let mut c = cluster(38);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let cfg = FabricConfig::default().with_alert_check(alerts[0].rack, 2);
        let mut rec = RingRecorder::new(65536);
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut rec);
        assert!(rec.count_kind("alert_check_fired") > 0);
        assert!(
            report.ticks < cfg.max_ticks,
            "checks must not wedge the round"
        );
        assert!(report.audit.is_clean(), "{}", report.audit);
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
    }

    #[test]
    fn uncommitted_leftovers_settle_as_failed_migrations() {
        // regression for the EVT01 dead-variant finding: a request cut
        // off by loss + crash whose move never reached ground truth must
        // surface as MigrationFailed (event and counter agree), not
        // vanish silently back into the pending queue
        let mut c = cluster(27);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let crashed = alerts[0].rack;
        let cfg = FabricConfig {
            faults: ChannelFaults {
                drop: 0.10,
                ..ChannelFaults::lossy(0.10)
            },
            seed: 3,
            crashed: vec![CrashWindow::whole_round(crashed)],
            ..FabricConfig::default()
        };
        let mut rec = RingRecorder::new(65536);
        let report = fabric_round_obs(&mut c, &metric, &alerts, &vals, &cfg, &mut rec);
        let failed: Vec<u64> = rec
            .to_vec()
            .into_iter()
            .filter_map(|e| match e {
                Event::MigrationFailed { vm, .. } => Some(vm),
                _ => None,
            })
            .collect();
        assert_eq!(
            failed.len(),
            1,
            "seed 3 settles exactly one unknown fate as failed"
        );
        assert_eq!(rec.counters().get("migrations.failed"), 1);
        assert!(
            !report
                .plan
                .moves
                .iter()
                .any(|m| m.vm.index() as u64 == failed[0]),
            "a failed migration must not also appear in the committed plan"
        );
        assert_capacity_ok(&c);
        assert_deps_ok(&c);
    }
}

//! Alg. 3 — VMMIGRATION: pair candidate VMs with destination hosts by
//! minimum-weight matching, then negotiate each move with the destination
//! shim (Alg. 4), recalculating for rejected VMs.

use crate::matching::{min_cost_assignment_padded, FORBIDDEN};
use crate::request::{request_migration, RequestOutcome};
use dcn_sim::{RackMetric, SimConfig};
use dcn_topology::{DependencyGraph, HostId, Placement, RackId, VmId};
use serde::{Deserialize, Serialize};
use sheriff_obs::{emit, Event, EventSink, NullSink, RejectKind};
use std::collections::{BTreeSet, HashSet};

/// One committed migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Move {
    /// The migrated VM.
    pub vm: VmId,
    /// Where it came from.
    pub from: HostId,
    /// Where it landed.
    pub to: HostId,
    /// The Eqn. 1 cost of this move.
    pub cost: f64,
}

/// Outcome of a VMMIGRATION invocation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// Committed moves, in commit order.
    pub moves: Vec<Move>,
    /// Total Eqn. 1 cost of the committed moves.
    pub total_cost: f64,
    /// Candidate (VM × destination-slot) pairs examined — the paper's
    /// "searching space" metric of Fig. 12/14.
    pub search_space: usize,
    /// REQUESTs rejected by destination shims.
    pub rejected: usize,
    /// Candidates that could not be placed anywhere.
    pub unplaced: Vec<VmId>,
}

impl MigrationPlan {
    /// Merge another plan into this one (used when aggregating shims).
    pub fn absorb(&mut self, other: MigrationPlan) {
        self.total_cost += other.total_cost;
        self.search_space += other.search_space;
        self.rejected += other.rejected;
        self.moves.extend(other.moves);
        self.unplaced.extend(other.unplaced);
    }
}

/// Mutable state VMMIGRATION operates on (split out so the distributed
/// runtime can hold it behind a lock).
pub struct MigrationContext<'a> {
    /// The authoritative placement.
    pub placement: &'a mut Placement,
    /// Rack/host inventory (rack → host index).
    pub inventory: &'a dcn_topology::Inventory,
    /// Dependency/conflict graph.
    pub deps: &'a DependencyGraph,
    /// Precomputed rack-to-rack cost metric.
    pub metric: &'a RackMetric,
    /// Simulation parameters.
    pub sim: &'a SimConfig,
}

/// Check a candidate/target list against the placement and inventory so
/// the matching never indexes out of range. Shared by the `try_*`
/// entry points; the panicking entry points skip it (their callers pass
/// ids they just read back out of the same structures).
fn check_migration_inputs(
    ctx: &MigrationContext<'_>,
    candidates: &[VmId],
    target_racks: &[RackId],
) -> Result<(), dcn_sim::SheriffError> {
    if candidates.is_empty() {
        return Err(dcn_sim::SheriffError::NoCandidates);
    }
    let vm_count = ctx.placement.vm_count();
    for &vm in candidates {
        if vm.index() >= vm_count {
            return Err(dcn_sim::SheriffError::Invalid {
                reason: format!(
                    "candidate VM {} out of range (vm count {vm_count})",
                    vm.index()
                ),
            });
        }
    }
    let rack_count = ctx.inventory.rack_count();
    for &rack in target_racks {
        if rack.index() >= rack_count {
            return Err(dcn_sim::SheriffError::Invalid {
                reason: format!(
                    "target rack {} out of range (rack count {rack_count})",
                    rack.index()
                ),
            });
        }
    }
    Ok(())
}

/// Fallible [`vmmigration`]: validates the candidate and target lists
/// (non-empty candidates, every id in range) and returns a typed
/// [`SheriffError`](dcn_sim::SheriffError) instead of indexing out of
/// bounds deep inside the cost matrix.
pub fn try_vmmigration(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    target_racks: &[RackId],
    max_rounds: usize,
) -> Result<MigrationPlan, dcn_sim::SheriffError> {
    check_migration_inputs(ctx, candidates, target_racks)?;
    Ok(vmmigration(ctx, candidates, target_racks, max_rounds))
}

/// Fallible [`vmmigration_scoped`]; see [`try_vmmigration`].
pub fn try_vmmigration_scoped(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    target_racks: &[RackId],
    max_rounds: usize,
    include_own_racks: bool,
) -> Result<MigrationPlan, dcn_sim::SheriffError> {
    check_migration_inputs(ctx, candidates, target_racks)?;
    Ok(vmmigration_scoped(
        ctx,
        candidates,
        target_racks,
        max_rounds,
        include_own_racks,
    ))
}

/// Alg. 3. `candidates` are the VMs selected by PRIORITY; `target_racks`
/// is the shim's dominating region (destination hosts are drawn from
/// these racks *and* the VMs' own racks, since an overloaded host may
/// shed load onto a rack-local peer at cost `C_r` only).
///
/// Each round builds the VM × slot cost matrix under Eqn. 1 (FORBIDDEN
/// for slots lacking capacity, conflicting under χ, or unreachable under
/// `B_t`), solves minimum-weight matching, then issues REQUESTs in
/// matching order; rejected VMs are retried in the next round with the
/// rejecting host excluded. Terminates when every candidate is placed,
/// no slot remains, or `max_rounds` is hit.
pub fn vmmigration(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    target_racks: &[RackId],
    max_rounds: usize,
) -> MigrationPlan {
    vmmigration_scoped(ctx, candidates, target_racks, max_rounds, true)
}

/// [`vmmigration`] with explicit control over whether the candidates' own
/// racks join the destination set. Rack draining and ToR-failure
/// evacuation must keep evacuees *out* of the failing rack
/// (`include_own_racks = false`); the ordinary alert path allows
/// rack-local reshuffles at cost `C_r`.
pub fn vmmigration_scoped(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    target_racks: &[RackId],
    max_rounds: usize,
    include_own_racks: bool,
) -> MigrationPlan {
    vmmigration_scoped_obs(
        ctx,
        candidates,
        target_racks,
        max_rounds,
        include_own_racks,
        &mut NullSink,
    )
}

/// [`vmmigration_scoped`] with instrumentation: each REQUEST issued to a
/// destination shim and its verdict is emitted to `sink`
/// (`request_sent`, `ack_received`/`reject_received`,
/// `migration_committed`), plus one `plan_computed` summary per
/// invocation. Request ids follow the wire format `rack << 32 | seq`
/// with a per-invocation sequence, so a trace interleaves cleanly with
/// fabric traffic.
pub fn vmmigration_scoped_obs<S: EventSink + ?Sized>(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    target_racks: &[RackId],
    max_rounds: usize,
    include_own_racks: bool,
    sink: &mut S,
) -> MigrationPlan {
    vmmigration_in_flight_obs(
        ctx,
        candidates,
        target_racks,
        max_rounds,
        include_own_racks,
        &BTreeSet::new(),
        sink,
    )
}

/// [`vmmigration_scoped_obs`] with an in-flight guard: VMs whose
/// pre-copy is currently streaming are excluded from re-planning in
/// this window, on both sides of the matching.
///
/// Eqn. 1 prices each move independently; that only holds across
/// *distinct* moves. A VM mid-transfer is already being moved, so
/// re-selecting it as a source would double-count the same migration,
/// and — because PREPARE reserves the VM at its destination, so
/// `host_of` points there while the stream is in flight — the host
/// absorbing its pre-copy must take no additional arrivals either.
/// With `in_flight` empty this is exactly [`vmmigration_scoped_obs`].
pub fn vmmigration_in_flight_obs<S: EventSink + ?Sized>(
    ctx: &mut MigrationContext<'_>,
    candidates: &[VmId],
    target_racks: &[RackId],
    max_rounds: usize,
    include_own_racks: bool,
    in_flight: &BTreeSet<VmId>,
    sink: &mut S,
) -> MigrationPlan {
    // source guard: drop candidates already mid-transfer
    let mut skipped = 0u64;
    let mut pending: Vec<VmId> = Vec::with_capacity(candidates.len());
    for &vm in candidates {
        if in_flight.contains(&vm) {
            skipped += 1;
        } else {
            pending.push(vm);
        }
    }
    if skipped > 0 {
        sink.counter("migrations.in_flight_skipped", skipped);
    }
    // destination guard: hosts currently absorbing a pre-copy
    let hot_hosts: BTreeSet<HostId> = in_flight
        .iter()
        .filter(|vm| vm.index() < ctx.placement.vm_count())
        .map(|&vm| ctx.placement.host_of(vm))
        .collect();
    let home_rack = pending
        .first()
        .map(|&vm| ctx.placement.rack_of(vm).index() as u64);
    let mut req_seq = 0u64;
    let mut plan = MigrationPlan::default();
    // per-VM hosts that rejected or are otherwise excluded
    let mut excluded: Vec<(VmId, HostId)> = Vec::new();

    for _round in 0..max_rounds {
        if pending.is_empty() {
            break;
        }
        // destination slots: hosts of the target racks plus (optionally)
        // the pending VMs' own racks, minus each VM's current host
        // (per-pair check)
        let mut slot_hosts: Vec<HostId> = Vec::new();
        let mut seen = HashSet::new();
        let mut rack_list: Vec<RackId> = target_racks.to_vec();
        if include_own_racks {
            for &vm in &pending {
                rack_list.push(ctx.placement.rack_of(vm));
            }
        }
        for &rack in &rack_list {
            if seen.insert(rack) {
                slot_hosts.extend_from_slice(ctx.inventory.hosts_in(rack));
            }
        }
        if slot_hosts.is_empty() {
            break;
        }

        plan.search_space += pending.len() * slot_hosts.len();

        // Two matrices: `base` is the literal Eqn. 1 cost (what the plan
        // reports), `adjusted` adds the load-aware tie-break that steers
        // the matching toward under-utilised hosts (the balancing
        // objective behind constraint (10)).
        let mut base = vec![vec![FORBIDDEN; slot_hosts.len()]; pending.len()];
        let mut adjusted = vec![vec![FORBIDDEN; slot_hosts.len()]; pending.len()];
        for (i, &vm) in pending.iter().enumerate() {
            let spec = ctx.placement.spec(vm);
            let from_host = ctx.placement.host_of(vm);
            let from_rack = ctx.placement.rack_of(vm);
            for (j, &host) in slot_hosts.iter().enumerate() {
                if host == from_host
                    || hot_hosts.contains(&host)
                    || excluded.contains(&(vm, host))
                    || ctx.placement.free_capacity(host) < spec.capacity
                    || ctx.deps.conflicts_on_host(vm, host, ctx.placement)
                {
                    continue;
                }
                let to_rack = ctx.placement.rack_of_host(host);
                if !ctx.metric.reachable(from_rack, to_rack) {
                    continue;
                }
                let chi = ctx.deps.chi(vm, to_rack, ctx.placement);
                let c = ctx
                    .metric
                    .migration_cost(ctx.sim, spec.capacity, from_rack, to_rack, chi);
                let post_util = (ctx.placement.used_capacity(host) + spec.capacity)
                    / ctx.placement.host_capacity(host);
                base[i][j] = c;
                adjusted[i][j] = c + ctx.sim.load_balance_weight * post_util;
            }
        }

        let (assignment, _) = min_cost_assignment_padded(&adjusted);
        let cost = base;

        let mut next_pending = Vec::new();
        let mut any_progress = false;
        for (i, assigned) in assignment.into_iter().enumerate() {
            let vm = pending[i];
            let Some(j) = assigned else {
                next_pending.push(vm);
                continue;
            };
            let host = slot_hosts[j];
            let from = ctx.placement.host_of(vm);
            let move_cost = cost[i][j];
            req_seq += 1;
            let req = (ctx.placement.rack_of(vm).index() as u64) << 32 | req_seq;
            emit(sink, || Event::RequestSent {
                req,
                vm: vm.index() as u64,
                dest_host: host.index() as u64,
                attempt: 1,
            });
            match request_migration(ctx.placement, ctx.deps, vm, host) {
                RequestOutcome::Ack => {
                    emit(sink, || Event::AckReceived {
                        req,
                        vm: vm.index() as u64,
                    });
                    emit(sink, || Event::MigrationCommitted {
                        vm: vm.index() as u64,
                        from_host: from.index() as u64,
                        to_host: host.index() as u64,
                        cost: move_cost,
                    });
                    sink.counter("migrations.committed", 1);
                    plan.moves.push(Move {
                        vm,
                        from,
                        to: host,
                        cost: move_cost,
                    });
                    plan.total_cost += move_cost;
                    any_progress = true;
                }
                verdict => {
                    emit(sink, || Event::RejectReceived {
                        req,
                        vm: vm.index() as u64,
                        reason: match verdict {
                            RequestOutcome::RejectConflict => RejectKind::Conflict,
                            RequestOutcome::RejectNoop => RejectKind::Noop,
                            _ => RejectKind::Capacity,
                        },
                    });
                    sink.counter("migrations.rejected", 1);
                    plan.rejected += 1;
                    excluded.push((vm, host));
                    next_pending.push(vm);
                }
            }
        }
        pending = next_pending;
        if !any_progress {
            break;
        }
    }
    plan.unplaced.extend(pending);
    if let Some(rack) = home_rack {
        emit(sink, || Event::PlanComputed {
            rack,
            proposals: plan.moves.len() as u64,
            unassigned: plan.unplaced.len() as u64,
            search_space: plan.search_space as u64,
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::{Cluster, ClusterConfig};
    use dcn_topology::fattree::{self, FatTreeConfig};
    use dcn_topology::VmSpec;

    fn cluster() -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 3.0,
                seed: 7,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        )
    }

    #[test]
    fn migration_reduces_source_load_and_respects_capacity() {
        let mut c = cluster();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        // pick the most loaded host's VMs as candidates
        let host = (0..c.placement.host_count())
            .map(HostId::from_index)
            .max_by(|&a, &b| {
                c.placement
                    .utilization(a)
                    .partial_cmp(&c.placement.utilization(b))
                    .unwrap()
            })
            .unwrap();
        let candidates: Vec<VmId> = c
            .placement
            .vms_on(host)
            .iter()
            .copied()
            .filter(|&vm| !c.placement.spec(vm).delay_sensitive)
            .take(2)
            .collect();
        assert!(!candidates.is_empty());
        let before = c.placement.used_capacity(host);
        let rack = c.placement.rack_of_host(host);
        let region = c.dcn.neighbor_racks(rack, 4);
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let plan = vmmigration(&mut ctx, &candidates, &region, 5);
        assert!(!plan.moves.is_empty(), "nothing migrated");
        assert!(c.placement.used_capacity(host) < before);
        for h in 0..c.placement.host_count() {
            let h = HostId::from_index(h);
            assert!(c.placement.used_capacity(h) <= c.placement.host_capacity(h) + 1e-9);
        }
    }

    #[test]
    fn plan_cost_matches_sum_of_moves() {
        let mut c = cluster();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let candidates: Vec<VmId> = c.placement.vm_ids().take(3).collect();
        let rack = c.placement.rack_of(candidates[0]);
        let region = c.dcn.neighbor_racks(rack, 4);
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let plan = vmmigration(&mut ctx, &candidates, &region, 5);
        let sum: f64 = plan.moves.iter().map(|m| m.cost).sum();
        assert!((plan.total_cost - sum).abs() < 1e-9);
        // every committed move is reflected in the placement
        for m in &plan.moves {
            assert_eq!(c.placement.host_of(m.vm), m.to);
        }
    }

    #[test]
    fn conflicting_destinations_are_avoided() {
        // two dependent VMs: they must never land on the same host
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut placement = Placement::new(&dcn.inventory);
        let mut ids = Vec::new();
        for _ in 0..2 {
            let s = VmSpec {
                id: placement.next_vm_id(),
                capacity: 20.0,
                value: 1.0,
                delay_sensitive: false,
            };
            ids.push(placement.add_vm(s, HostId(0)).unwrap());
        }
        let mut deps = DependencyGraph::new(2);
        deps.add_dependency(ids[0], ids[1]);
        let sim = SimConfig::paper();
        let metric = RackMetric::build(&dcn, &sim);
        let region = dcn.neighbor_racks(RackId(0), 4);
        let mut ctx = MigrationContext {
            placement: &mut placement,
            inventory: &dcn.inventory,
            deps: &deps,
            metric: &metric,
            sim: &sim,
        };
        let plan = vmmigration(&mut ctx, &ids, &region, 5);
        assert_eq!(plan.moves.len(), 2);
        assert_ne!(
            placement.host_of(ids[0]),
            placement.host_of(ids[1]),
            "dependent VMs co-located"
        );
    }

    #[test]
    fn search_space_grows_with_region_size() {
        let mut c1 = cluster();
        let mut c2 = cluster();
        let metric1 = RackMetric::build(&c1.dcn, &c1.sim);
        let metric2 = RackMetric::build(&c2.dcn, &c2.sim);
        let candidates: Vec<VmId> = c1.placement.vm_ids().take(2).collect();
        let rack = c1.placement.rack_of(candidates[0]);
        let small = c1.dcn.neighbor_racks(rack, 2);
        let large = c1.dcn.neighbor_racks(rack, 4);
        assert!(large.len() > small.len());
        let p1 = {
            let mut ctx = MigrationContext {
                placement: &mut c1.placement,
                inventory: &c1.dcn.inventory,
                deps: &c1.deps,
                metric: &metric1,
                sim: &c1.sim,
            };
            vmmigration(&mut ctx, &candidates, &small, 1)
        };
        let p2 = {
            let mut ctx = MigrationContext {
                placement: &mut c2.placement,
                inventory: &c2.dcn.inventory,
                deps: &c2.deps,
                metric: &metric2,
                sim: &c2.sim,
            };
            vmmigration(&mut ctx, &candidates, &large, 1)
        };
        assert!(p2.search_space > p1.search_space);
    }

    #[test]
    fn empty_candidates_yield_empty_plan() {
        let mut c = cluster();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let plan = vmmigration(&mut ctx, &[], &[RackId(1)], 5);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.search_space, 0);
        assert!(plan.unplaced.is_empty());
    }

    #[test]
    fn in_flight_vms_are_neither_source_nor_destination() {
        let mut c = cluster();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let candidates: Vec<VmId> = c.placement.vm_ids().take(4).collect();
        let rack = c.placement.rack_of(candidates[0]);
        let region = c.dcn.neighbor_racks(rack, 4);
        // the first candidate's pre-copy is mid-stream: its reserved
        // destination is wherever the placement says it lives right now
        let streaming = candidates[0];
        let reserved_dest = c.placement.host_of(streaming);
        let in_flight: BTreeSet<VmId> = [streaming].into_iter().collect();
        let plan = {
            let mut ctx = MigrationContext {
                placement: &mut c.placement,
                inventory: &c.dcn.inventory,
                deps: &c.deps,
                metric: &metric,
                sim: &c.sim,
            };
            vmmigration_in_flight_obs(
                &mut ctx,
                &candidates,
                &region,
                5,
                true,
                &in_flight,
                &mut NullSink,
            )
        };
        assert!(!plan.moves.is_empty(), "remaining candidates must move");
        for m in &plan.moves {
            assert_ne!(m.vm, streaming, "in-flight VM re-planned as source");
            assert_ne!(
                m.to, reserved_dest,
                "arrival scheduled onto a host mid-pre-copy"
            );
        }
        assert_eq!(
            c.placement.host_of(streaming),
            reserved_dest,
            "in-flight VM must not be moved by the planner"
        );
        assert!(
            !plan.unplaced.contains(&streaming),
            "a guarded VM is managed elsewhere, not unplaced"
        );
    }

    #[test]
    fn empty_in_flight_set_matches_unguarded_plan() {
        let mut a = cluster();
        let mut b = cluster();
        let metric_a = RackMetric::build(&a.dcn, &a.sim);
        let metric_b = RackMetric::build(&b.dcn, &b.sim);
        let candidates: Vec<VmId> = a.placement.vm_ids().take(3).collect();
        let rack = a.placement.rack_of(candidates[0]);
        let region = a.dcn.neighbor_racks(rack, 4);
        let guarded = {
            let mut ctx = MigrationContext {
                placement: &mut a.placement,
                inventory: &a.dcn.inventory,
                deps: &a.deps,
                metric: &metric_a,
                sim: &a.sim,
            };
            vmmigration_in_flight_obs(
                &mut ctx,
                &candidates,
                &region,
                5,
                true,
                &BTreeSet::new(),
                &mut NullSink,
            )
        };
        let plain = {
            let mut ctx = MigrationContext {
                placement: &mut b.placement,
                inventory: &b.dcn.inventory,
                deps: &b.deps,
                metric: &metric_b,
                sim: &b.sim,
            };
            vmmigration_scoped(&mut ctx, &candidates, &region, 5, true)
        };
        assert_eq!(guarded.moves.len(), plain.moves.len());
        for (g, p) in guarded.moves.iter().zip(plain.moves.iter()) {
            assert_eq!((g.vm, g.from, g.to), (p.vm, p.from, p.to));
            assert!((g.cost - p.cost).abs() < 1e-12);
        }
        assert_eq!(guarded.search_space, plain.search_space);
    }

    #[test]
    fn oversized_vm_reported_unplaced() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut placement = Placement::new(&dcn.inventory);
        // fill every host of racks 0 and 1 to the brim except host 0
        let s = VmSpec {
            id: placement.next_vm_id(),
            capacity: 90.0,
            value: 1.0,
            delay_sensitive: false,
        };
        let vm = placement.add_vm(s, HostId(0)).unwrap();
        for h in 1..placement.host_count() {
            let s = VmSpec {
                id: placement.next_vm_id(),
                capacity: 95.0,
                value: 1.0,
                delay_sensitive: false,
            };
            placement.add_vm(s, HostId::from_index(h)).unwrap();
        }
        let deps = DependencyGraph::new(placement.vm_count());
        let sim = SimConfig::paper();
        let metric = RackMetric::build(&dcn, &sim);
        let region = dcn.neighbor_racks(RackId(0), 4);
        let mut ctx = MigrationContext {
            placement: &mut placement,
            inventory: &dcn.inventory,
            deps: &deps,
            metric: &metric,
            sim: &sim,
        };
        let plan = vmmigration(&mut ctx, &[vm], &region, 3);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.unplaced, vec![vm]);
    }
}

//! The sharded message-passing runtime: the closest model to the paper's
//! actual deployment. Every rack runs an *agent* thread that owns its own
//! hosts' capacity and VM lists — there is no shared placement and no
//! global lock. Alerted racks additionally run a *planner* doing Alg. 1's
//! selection + matching against a state snapshot, then negotiating each
//! move with the destination rack's agent over crossbeam channels using
//! Alg. 4's REQUEST → ACK/REJECT handshake (FCFS in channel-arrival
//! order, exactly the paper's receiver rule).
//!
//! The [`crate::distributed`] module's runtime shares one placement behind a
//! lock (simple, linearisable); this one shards state like real shims
//! would, and the tests verify both runtimes enforce the same
//! invariants.

use crate::matching::{min_cost_assignment_padded, FORBIDDEN};
use crate::priority::{priority, Budget};
use crate::vmmigration::{MigrationPlan, Move};
use crossbeam::channel::{bounded, Receiver, Sender};
use dcn_sim::engine::Cluster;
use dcn_sim::{Alert, AlertSource, RackMetric, SimConfig};
use dcn_topology::{DependencyGraph, HostId, Inventory, Placement, RackId, VmId};
use sheriff_obs::{emit, Event, EventSink};

/// A migration request from a source shim to a destination rack agent
/// (Alg. 4's input).
struct Request {
    vm: VmId,
    capacity: f64,
    dest: HostId,
    reply: Sender<Reply>,
}

/// The destination agent's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reply {
    Ack,
    RejectCapacity,
    RejectConflict,
}

/// Per-rack capacity/VM shard owned exclusively by that rack's agent.
/// Departures are deliberately *not* credited back during a round (no
/// Remove message): the shard under-estimates free capacity, which can
/// only cause spurious REJECTs, never over-commitment.
struct Shard {
    hosts: Vec<HostId>,
    free: Vec<f64>,
    vms: Vec<Vec<VmId>>,
}

impl Shard {
    fn from_placement(inventory: &Inventory, placement: &Placement, rack: RackId) -> Self {
        let hosts = inventory.hosts_in(rack).to_vec();
        let free = hosts.iter().map(|&h| placement.free_capacity(h)).collect();
        let vms = hosts
            .iter()
            .map(|&h| placement.vms_on(h).to_vec())
            .collect();
        Self { hosts, free, vms }
    }

    fn slot(&self, host: HostId) -> Option<usize> {
        self.hosts.iter().position(|&h| h == host)
    }

    /// Alg. 4 at the destination: capacity then conflict, FCFS.
    fn handle(&mut self, req: &Request, deps: &DependencyGraph) -> Reply {
        let Some(i) = self.slot(req.dest) else {
            return Reply::RejectCapacity;
        };
        if self.free[i] < req.capacity {
            return Reply::RejectCapacity;
        }
        if self.vms[i]
            .iter()
            .any(|&other| deps.dependent(req.vm, other))
        {
            return Reply::RejectConflict;
        }
        self.free[i] -= req.capacity;
        self.vms[i].push(req.vm);
        Reply::Ack
    }
}

/// Result of one sharded round.
#[derive(Debug, Clone, Default)]
pub struct ShardedReport {
    /// Moves committed across all shims.
    pub plan: MigrationPlan,
    /// REQUESTs rejected by destination agents.
    pub rejected: usize,
    /// Planner threads that ran.
    pub shims: usize,
}

/// What one planner thread hands back to the single-threaded apply
/// phase: the committed moves plus the selection/matching statistics the
/// observability layer reports on its behalf.
struct PlannerOut {
    moves: Vec<Move>,
    rejected: usize,
    candidates: usize,
    victims: usize,
    unassigned: usize,
    search_space: usize,
}

/// Run one management round on the sharded runtime. Mutates
/// `cluster.placement` to the merged post-round state.
#[cfg(feature = "legacy")]
#[deprecated(
    since = "0.1.0",
    note = "use `ShardedRuntime` via the `Runtime` trait, or `sharded_round_obs`"
)]
pub fn sharded_round(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
) -> ShardedReport {
    sharded_round_obs(
        cluster,
        metric,
        alerts,
        alert_values,
        &mut sheriff_obs::NullSink,
    )
}

/// The sharded round with an [`EventSink`] observing the round (the
/// deprecated `sharded_round` wrapper is this with a
/// [`NullSink`](sheriff_obs::NullSink), behind the `legacy` feature).
///
/// Planner and agent threads stay oblivious to the sink: they return
/// their statistics, and all events are emitted from the single-threaded
/// apply phase in alerted-rack order, so the stream is deterministic and
/// the sink needs no synchronization. Per-request REQUEST/ACK detail is
/// not observable here (the handshakes race inside threads); the
/// per-planner aggregates and committed moves are.
pub fn sharded_round_obs<S: EventSink + ?Sized>(
    cluster: &mut Cluster,
    metric: &RackMetric,
    alerts: &[Alert],
    alert_values: &[f64],
    sink: &mut S,
) -> ShardedReport {
    let mut alerted: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
    alerted.sort_unstable();
    alerted.dedup();
    if alerted.is_empty() {
        return ShardedReport::default();
    }

    let inventory = &cluster.dcn.inventory;
    let deps = &cluster.deps;
    let sim = &cluster.sim;
    let placement = &cluster.placement;
    let rack_count = inventory.rack_count();

    // one inbox per rack agent
    let mut inboxes: Vec<Sender<Request>> = Vec::with_capacity(rack_count);
    let mut outlets: Vec<Receiver<Request>> = Vec::with_capacity(rack_count);
    for _ in 0..rack_count {
        let (tx, rx) = bounded::<Request>(64);
        inboxes.push(tx);
        outlets.push(rx);
    }

    // snapshot each planner needs (immutable views + initial free state)
    let regions: Vec<Vec<RackId>> = alerted
        .iter()
        .map(|&r| cluster.dcn.neighbor_racks(r, sim.region_hops))
        .collect();

    let mut report = ShardedReport {
        shims: alerted.len(),
        ..ShardedReport::default()
    };

    let results: (Vec<PlannerOut>, Vec<Shard>) = crossbeam::thread::scope(|scope| {
        // agents: own their shard, serve requests until every planner is done
        let agent_handles: Vec<_> = (0..rack_count)
            .map(|r| {
                let rx = outlets[r].clone();
                let rack = RackId::from_index(r);
                scope.spawn(move |_| {
                    let mut shard = Shard::from_placement(inventory, placement, rack);
                    // the channel closes when all planner-side senders drop
                    while let Ok(req) = rx.recv() {
                        let verdict = shard.handle(&req, deps);
                        let _ = req.reply.send(verdict);
                    }
                    shard
                })
            })
            .collect();

        // planners: one per alerted rack
        let planner_handles: Vec<_> = alerted
            .iter()
            .enumerate()
            .map(|(i, &rack)| {
                let inboxes = inboxes.clone();
                let region = regions[i].clone();
                scope.spawn(move |_| {
                    plan_and_negotiate(
                        placement,
                        inventory,
                        deps,
                        metric,
                        sim,
                        rack,
                        &region,
                        alerts,
                        alert_values,
                        &inboxes,
                    )
                })
            })
            .collect();

        let planner_out: Vec<PlannerOut> = planner_handles
            .into_iter()
            .map(|h| h.join().expect("planner panicked"))
            .collect();
        // all planners finished: drop our inbox clones so agents exit
        drop(inboxes);
        let shards: Vec<Shard> = agent_handles
            .into_iter()
            .map(|h| h.join().expect("agent panicked"))
            .collect();
        (planner_out, shards)
    })
    .expect("thread scope failed");

    let (planner_out, _shards) = results;
    // apply the committed moves to the authoritative placement; every ACK
    // reserved real capacity in the owning shard, so these cannot fail.
    // Events are emitted here, after the threads joined, in alerted-rack
    // order — the only deterministic vantage point of this runtime.
    for (&rack, out) in alerted.iter().zip(planner_out) {
        emit(sink, || Event::VictimsSelected {
            rack: rack.index() as u64,
            candidates: out.candidates as u64,
            selected: out.victims as u64,
        });
        emit(sink, || Event::PlanComputed {
            rack: rack.index() as u64,
            proposals: (out.moves.len() + out.rejected) as u64,
            unassigned: out.unassigned as u64,
            search_space: out.search_space as u64,
        });
        report.rejected += out.rejected;
        sink.counter("migrations.rejected", out.rejected as u64);
        report.plan.search_space += out.search_space;
        for m in out.moves {
            cluster
                .placement
                .migrate(m.vm, m.to)
                .expect("shard ACK guarantees capacity");
            emit(sink, || Event::MigrationCommitted {
                vm: m.vm.index() as u64,
                from_host: m.from.index() as u64,
                to_host: m.to.index() as u64,
                cost: m.cost,
            });
            sink.counter("migrations.committed", 1);
            report.plan.total_cost += m.cost;
            report.plan.moves.push(m);
        }
    }
    report
}

/// One planner: Alg. 1 victim selection + matching on the snapshot, then
/// per-move REQUEST negotiation. Returns the committed moves plus the
/// statistics the apply phase reports to the event sink.
#[allow(clippy::too_many_arguments)]
fn plan_and_negotiate(
    placement: &Placement,
    inventory: &Inventory,
    deps: &DependencyGraph,
    metric: &RackMetric,
    sim: &SimConfig,
    rack: RackId,
    region: &[RackId],
    alerts: &[Alert],
    alert_values: &[f64],
    inboxes: &[Sender<Request>],
) -> PlannerOut {
    // victim selection (host alerts, w = 1; ToR alerts, β budget)
    let mut victims: Vec<VmId> = Vec::new();
    let mut candidates = 0usize;
    let mut tor_alert = false;
    for alert in alerts.iter().filter(|a| a.rack == rack) {
        match alert.source {
            AlertSource::Host(h) => {
                candidates += placement.vms_on(h).len();
                victims.extend(priority(
                    placement.vms_on(h),
                    placement,
                    |vm| alert_values[vm.index()],
                    Budget::SingleMaxAlert,
                ));
            }
            AlertSource::LocalTor(_) => tor_alert = true,
            AlertSource::OuterSwitch(_) => {}
        }
    }
    if tor_alert {
        let mut f: Vec<VmId> = Vec::new();
        for &host in inventory.hosts_in(rack) {
            f.extend_from_slice(placement.vms_on(host));
        }
        candidates += f.len();
        victims.extend(priority(
            &f,
            placement,
            |vm| alert_values[vm.index()],
            Budget::Capacity(sim.beta * inventory.rack(rack).tor_capacity),
        ));
    }
    victims.sort_unstable();
    victims.dedup();
    if victims.is_empty() {
        return PlannerOut {
            moves: Vec::new(),
            rejected: 0,
            candidates,
            victims: 0,
            unassigned: 0,
            search_space: 0,
        };
    }

    // destination slots across the region + own rack
    let mut slot_hosts: Vec<HostId> = Vec::new();
    for &r in region.iter().chain(std::iter::once(&rack)) {
        slot_hosts.extend_from_slice(inventory.hosts_in(r));
    }

    // plan on the snapshot
    let mut cost = vec![vec![FORBIDDEN; slot_hosts.len()]; victims.len()];
    let mut adjusted = vec![vec![FORBIDDEN; slot_hosts.len()]; victims.len()];
    for (i, &vm) in victims.iter().enumerate() {
        let spec = placement.spec(vm);
        let from_host = placement.host_of(vm);
        let from_rack = placement.rack_of(vm);
        for (j, &host) in slot_hosts.iter().enumerate() {
            if host == from_host
                || placement.free_capacity(host) < spec.capacity
                || deps.conflicts_on_host(vm, host, placement)
            {
                continue;
            }
            let to_rack = placement.rack_of_host(host);
            if !metric.reachable(from_rack, to_rack) {
                continue;
            }
            let chi = deps.chi(vm, to_rack, placement);
            let c = metric.migration_cost(sim, spec.capacity, from_rack, to_rack, chi);
            let post =
                (placement.used_capacity(host) + spec.capacity) / placement.host_capacity(host);
            cost[i][j] = c;
            adjusted[i][j] = c + sim.load_balance_weight * post;
        }
    }
    let (assignment, _) = min_cost_assignment_padded(&adjusted);

    // negotiate each move with the destination rack's agent
    let mut moves = Vec::new();
    let mut rejected = 0usize;
    let mut unassigned = 0usize;
    for (i, assigned) in assignment.into_iter().enumerate() {
        let Some(j) = assigned else {
            unassigned += 1;
            continue;
        };
        let vm = victims[i];
        let host = slot_hosts[j];
        let dest_rack = placement.rack_of_host(host);
        let (reply_tx, reply_rx) = bounded::<Reply>(1);
        let req = Request {
            vm,
            capacity: placement.spec(vm).capacity,
            dest: host,
            reply: reply_tx,
        };
        if inboxes[dest_rack.index()].send(req).is_err() {
            rejected += 1;
            continue;
        }
        match reply_rx.recv() {
            Ok(Reply::Ack) => moves.push(Move {
                vm,
                from: placement.host_of(vm),
                to: host,
                cost: cost[i][j],
            }),
            _ => rejected += 1,
        }
    }
    let victim_count = victims.len();
    PlannerOut {
        moves,
        rejected,
        candidates,
        victims: victim_count,
        unassigned,
        search_space: victim_count * slot_hosts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::ClusterConfig;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use sheriff_obs::NullSink;

    fn cluster(seed: u64) -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(8));
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 4.0,
                seed,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        )
    }

    fn alert_values(c: &Cluster) -> Vec<f64> {
        c.placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect()
    }

    #[test]
    fn sharded_round_moves_and_preserves_invariants() {
        let mut c = cluster(81);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let report = sharded_round_obs(&mut c, &metric, &alerts, &vals, &mut NullSink);
        assert!(report.shims > 1);
        assert!(!report.plan.moves.is_empty());
        for h in 0..c.placement.host_count() {
            let h = HostId::from_index(h);
            assert!(
                c.placement.used_capacity(h) <= c.placement.host_capacity(h) + 1e-9,
                "host {h} over capacity"
            );
        }
        for vm in c.placement.vm_ids() {
            let host = c.placement.host_of(vm);
            for &other in c.placement.vms_on(host) {
                assert!(other == vm || !c.deps.dependent(vm, other));
            }
        }
    }

    #[test]
    fn sharded_rounds_balance_like_the_locked_runtime() {
        let mut sharded = cluster(82);
        let mut locked = cluster(82);
        let metric = RackMetric::build(&sharded.dcn, &sharded.sim);
        let initial = sharded.utilization_stddev();
        for t in 0..8 {
            let alerts = sharded.fraction_alerts(0.05, t);
            let vals = alert_values(&sharded);
            sharded_round_obs(&mut sharded, &metric, &alerts, &vals, &mut NullSink);

            let alerts = locked.fraction_alerts(0.05, t);
            let vals = alert_values(&locked);
            crate::distributed::distributed_round_obs(
                &mut locked,
                &metric,
                &alerts,
                &vals,
                3,
                &mut NullSink,
            );
        }
        let s = sharded.utilization_stddev();
        let l = locked.utilization_stddev();
        assert!(s < initial * 0.8, "sharded stalled: {initial} -> {s}");
        assert!(l < initial * 0.8, "locked stalled: {initial} -> {l}");
    }

    #[test]
    fn contended_destination_rejects_overflow() {
        // every alerted shim targets the same small region: the shard's
        // FCFS must reject what no longer fits, and the final state still
        // respects capacity
        let mut c = cluster(83);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.25, 0);
        let vals = alert_values(&c);
        let report = sharded_round_obs(&mut c, &metric, &alerts, &vals, &mut NullSink);
        // with heavy contention some rejections are expected but not
        // required; the hard requirement is capacity safety
        let _ = report.rejected;
        for h in 0..c.placement.host_count() {
            let h = HostId::from_index(h);
            assert!(c.placement.used_capacity(h) <= c.placement.host_capacity(h) + 1e-9);
        }
    }

    #[test]
    fn no_alerts_no_threads() {
        let mut c = cluster(84);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let report = sharded_round_obs(&mut c, &metric, &[], &[], &mut NullSink);
        assert_eq!(report.shims, 0);
        assert!(report.plan.moves.is_empty());
    }
}

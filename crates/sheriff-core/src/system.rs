//! The assembled Sheriff system: one object owning the cluster, the flow
//! network, the QCN queues, the ToR monitors and the shim controllers,
//! stepped as a whole — the deployment described in Sec. II ("by simply
//! inserting a shim layer on each rack, Sheriff can automatically monitor
//! its dominating region and provide quick response").
//!
//! Each step gathers alerts from all three sources of Sec. III-B —
//! predicted host overload, predicted ToR uplink congestion, and QCN
//! feedback from outer switches — and lets every alerted shim run Alg. 1.

use crate::shim::Sheriff;
use crate::vmmigration::MigrationContext;
use dcn_sim::congestion::{CongestionConfig, CongestionSim};
use dcn_sim::engine::{Cluster, ProfilePredictor};
use dcn_sim::flows::FlowNetwork;
use dcn_sim::tor_monitor::TorMonitor;
use dcn_sim::{Alert, AlertSource, RackMetric};
use dcn_topology::RackId;
use serde::{Deserialize, Serialize};
use sheriff_obs::{emit, AlertKind, Event, EventSink, NullSink, Timer};

/// What one system step did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// Simulation step executed.
    pub time: usize,
    /// Host-overload pre-alerts raised.
    pub host_alerts: usize,
    /// ToR uplink pre-alerts raised.
    pub tor_alerts: usize,
    /// Outer-switch (QCN) alerts raised.
    pub switch_alerts: usize,
    /// Migrations committed.
    pub migrations: usize,
    /// Flows rerouted.
    pub reroutes: usize,
    /// Host-utilisation std-dev after the step.
    pub stddev: f64,
    /// Worst switch queue after the step.
    pub worst_queue: f64,
    /// Invariant breaches found by the post-step audit (zero unless a
    /// bug corrupted the placement).
    pub audit_violations: usize,
}

/// The full assembled system, generic over the [`EventSink`] observing
/// it. The default `System<NullSink>` is observation-free and compiles
/// to exactly the uninstrumented loop; [`System::with_sink`] swaps in a
/// recorder or JSON-lines streamer without touching the management code.
pub struct System<S: EventSink = NullSink> {
    /// Cluster state (topology, placement, workloads).
    pub cluster: Cluster,
    /// Live flows between dependent VMs.
    pub flows: FlowNetwork,
    /// Per-switch QCN queues.
    pub qcn: CongestionSim,
    /// Per-rack ToR uplink monitors.
    pub tor: TorMonitor,
    /// Precomputed migration-cost metric.
    pub metric: RackMetric,
    sheriff: Sheriff,
    sink: S,
    time: usize,
}

impl System {
    /// Assemble the system with no observation. `flows` may be empty when
    /// only host-side management is simulated.
    pub fn new(cluster: Cluster, flows: FlowNetwork) -> Self {
        Self::with_sink(cluster, flows, NullSink)
    }
}

impl<S: EventSink> System<S> {
    /// Assemble the system with an [`EventSink`] observing every round:
    /// round boundaries, each raised alert, and the full negotiation
    /// trace of the management loop.
    pub fn with_sink(cluster: Cluster, flows: FlowNetwork, sink: S) -> Self {
        let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
        let qcn = CongestionSim::new(&cluster.dcn, CongestionConfig::default());
        let tor = TorMonitor::new(&cluster.dcn, 32);
        let sheriff = Sheriff::new(&cluster);
        Self {
            cluster,
            flows,
            qcn,
            tor,
            metric,
            sheriff,
            sink,
            time: 0,
        }
    }

    /// Current simulation step.
    pub fn time(&self) -> usize {
        self.time
    }

    /// Borrow the event sink (e.g. to query a
    /// [`RingRecorder`](sheriff_obs::RingRecorder) mid-run).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutably borrow the event sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Tear the system down and hand back the sink (e.g. to call
    /// [`JsonLinesSink::finish`](sheriff_obs::JsonLinesSink::finish)).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Advance one management period `T`: monitor, pre-alert, manage.
    pub fn step<P: ProfilePredictor>(&mut self, predictor: &P) -> StepReport {
        let t = self.time;
        let timer = Timer::start("system.step", t as u64);
        emit(&mut self.sink, || Event::RoundStart { time: t as u64 });
        let mut report = StepReport {
            time: t,
            ..StepReport::default()
        };

        // --- monitoring (Sec. III-B) ---------------------------------
        // 1. hosts: predicted workload-profile overload
        let mut alerts: Vec<Alert> = if self.cluster.workloads.is_empty() {
            Vec::new()
        } else {
            self.cluster.predicted_alerts(predictor, t + 1)
        };
        report.host_alerts = alerts.len();
        for a in &alerts {
            emit(&mut self.sink, || Event::AlertRaised {
                time: t as u64,
                rack: a.rack.index() as u64,
                kind: AlertKind::Host,
                severity: a.severity,
            });
        }
        self.sink.counter("alerts.host", report.host_alerts as u64);

        // 2. local ToR: predicted uplink congestion
        self.tor.record(&self.flows, &self.cluster.placement);
        let tor_alerts = self
            .tor
            .predicted_alerts(self.cluster.sim.alert_threshold, 3, t);
        report.tor_alerts = tor_alerts.len();
        for a in &tor_alerts {
            emit(&mut self.sink, || Event::AlertRaised {
                time: t as u64,
                rack: a.rack.index() as u64,
                kind: AlertKind::LocalTor,
                severity: a.severity,
            });
        }
        self.sink.counter("alerts.tor", report.tor_alerts as u64);
        alerts.extend(tor_alerts);

        // 3. outer switches: QCN feedback
        let feedbacks = self.qcn.step(&self.cluster.dcn, &self.flows);
        for (sw, _) in &feedbacks {
            let racks: std::collections::BTreeSet<RackId> = self
                .flows
                .flows_through_switch(&self.cluster.dcn, *sw)
                .into_iter()
                .map(|f| self.cluster.placement.rack_of(self.flows.flows()[f].src))
                .collect();
            for rack in racks {
                let severity = self.qcn.severity(*sw).max(0.9);
                emit(&mut self.sink, || Event::AlertRaised {
                    time: t as u64,
                    rack: rack.index() as u64,
                    kind: AlertKind::OuterSwitch,
                    severity,
                });
                alerts.push(Alert {
                    rack,
                    source: AlertSource::OuterSwitch(*sw),
                    severity,
                    time: t,
                });
                report.switch_alerts += 1;
            }
        }
        self.sink
            .counter("alerts.switch", report.switch_alerts as u64);

        // --- management (Alg. 1 per alerted shim) ---------------------
        let mut racks: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        for rack in racks {
            let region = self.sheriff.region(rack).to_vec();
            let demands: Vec<f64> = if self.cluster.workloads.is_empty() {
                self.cluster
                    .placement
                    .vm_ids()
                    .map(|vm| {
                        self.cluster
                            .placement
                            .utilization(self.cluster.placement.host_of(vm))
                    })
                    .collect()
            } else {
                self.cluster
                    .placement
                    .vm_ids()
                    .map(|vm| {
                        predictor
                            .predict(&self.cluster.workloads[vm.index()], t + 1)
                            .max()
                    })
                    .collect()
            };
            let outcome = {
                let mut ctx = MigrationContext {
                    placement: &mut self.cluster.placement,
                    inventory: &self.cluster.dcn.inventory,
                    deps: &self.cluster.deps,
                    metric: &self.metric,
                    sim: &self.cluster.sim,
                };
                crate::alert_mgmt::pre_alert_management_obs(
                    &mut ctx,
                    &self.cluster.dcn,
                    Some(&mut self.flows),
                    rack,
                    &region,
                    &alerts,
                    &|vm| demands[vm.index()],
                    self.sheriff.max_rounds,
                    &mut self.sink,
                )
            };
            report.migrations += outcome.plan.moves.len();
            report.reroutes += outcome.reroutes.rerouted;
            // migrated VMs carry their flows with them: rebase any flow
            // touching a moved VM onto its new rack's paths
            for m in &outcome.plan.moves {
                self.flows
                    .rebase_vm(&self.cluster.dcn, &self.cluster.placement, m.vm);
            }
        }

        report.audit_violations =
            crate::audit::audit_placement(&self.cluster.placement, &self.cluster.deps).len();
        report.stddev = self.cluster.utilization_stddev();
        report.worst_queue = self.qcn.worst_queue();
        self.time += 1;
        emit(&mut self.sink, || Event::RoundEnd {
            time: t as u64,
            migrations: report.migrations as u64,
            reroutes: report.reroutes as u64,
        });
        timer.stop(&mut self.sink, self.time as u64);
        report
    }

    /// Run `n` steps, returning every report.
    pub fn run<P: ProfilePredictor>(&mut self, predictor: &P, n: usize) -> Vec<StepReport> {
        (0..n).map(|_| self.step(predictor)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::{ClusterConfig, HoltPredictor};
    use dcn_sim::flows::Flow;
    use dcn_sim::SimConfig;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use dcn_topology::{HostId, VmId};

    fn system(seed: u64, hot_flows: bool) -> System {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let cluster = Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.0,
                skew: 2.0,
                workload_len: 200,
                seed,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        );
        let mut flow_list = Vec::new();
        if hot_flows {
            // two overlapping flows between the first two racks populous
            // enough to host them; their shared shortest path congests
            let vms_in = |rack: RackId| -> Vec<VmId> {
                cluster
                    .placement
                    .vm_ids()
                    .filter(|&vm| cluster.placement.rack_of(vm) == rack)
                    .collect()
            };
            let fat: Vec<RackId> = (0..cluster.dcn.rack_count())
                .map(RackId::from_index)
                .filter(|&r| vms_in(r).len() >= 2)
                .collect();
            if fat.len() >= 2 {
                let srcs = vms_in(fat[0]);
                let dsts = vms_in(fat[1]);
                for i in 0..2 {
                    flow_list.push(Flow {
                        src: srcs[i],
                        dst: dsts[i],
                        rate: 0.55,
                        delay_sensitive: false,
                    });
                }
            }
        }
        let flows = FlowNetwork::route(&cluster.dcn, &cluster.placement, flow_list);
        System::new(cluster, flows)
    }

    #[test]
    fn all_three_alert_sources_fire_over_a_run() {
        let mut sys = system(7, true);
        let p = HoltPredictor::default();
        let reports = sys.run(&p, 60);
        let hosts: usize = reports.iter().map(|r| r.host_alerts).sum();
        let switches: usize = reports.iter().map(|r| r.switch_alerts).sum();
        assert!(hosts > 0, "host pre-alerts never fired");
        assert!(switches > 0, "QCN alerts never fired");
        // the loop must act on them
        let actions: usize = reports.iter().map(|r| r.migrations + r.reroutes).sum();
        assert!(actions > 0);
    }

    #[test]
    fn congestion_is_resolved_by_the_loop() {
        let mut sys = system(62, true);
        let p = HoltPredictor::default();
        let reports = sys.run(&p, 60);
        let peak = reports.iter().map(|r| r.worst_queue).fold(0.0, f64::max);
        let last = reports.last().unwrap().worst_queue;
        assert!(peak > 0.0, "hot flows should congest something");
        assert!(
            last < peak,
            "the loop should drain the queue: {peak} -> {last}"
        );
    }

    #[test]
    fn invariants_hold_after_long_run() {
        let mut sys = system(63, true);
        let p = HoltPredictor::default();
        sys.run(&p, 40);
        let c = &sys.cluster;
        for h in 0..c.placement.host_count() {
            let h = HostId::from_index(h);
            assert!(c.placement.used_capacity(h) <= c.placement.host_capacity(h) + 1e-9);
        }
        for vm in c.placement.vm_ids() {
            let host = c.placement.host_of(vm);
            for &other in c.placement.vms_on(host) {
                assert!(other == vm || !c.deps.dependent(vm, other));
            }
        }
        assert_eq!(sys.time(), 40);
    }

    #[test]
    fn flowless_system_still_manages_hosts() {
        let mut sys = system(64, false);
        let p = HoltPredictor::default();
        let reports = sys.run(&p, 30);
        assert!(reports.iter().all(|r| r.switch_alerts == 0));
        assert!(reports.iter().all(|r| r.tor_alerts == 0));
        let hosts: usize = reports.iter().map(|r| r.host_alerts).sum();
        assert!(hosts > 0, "host alerts still expected");
    }
}

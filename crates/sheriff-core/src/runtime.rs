//! One trait over all four management loops.
//!
//! The repository grew four ways to run one management round — the
//! centralized baseline of Sec. VI-B, the shared-lock threaded runtime,
//! the sharded message-passing runtime, and the virtual-time fabric
//! runtime — each with its own free function and argument list. The
//! [`Runtime`] trait unifies them behind `step(&mut self, ctx)` so
//! experiments, benches and the bakeoff examples can iterate over
//! `Box<dyn Runtime>` values instead of matching on names, and every
//! runtime reports through the same [`RoundOutcome`] and the same
//! [`EventSink`].
//!
//! The old free functions (`distributed_round` and friends) remain as
//! deprecated wrappers behind the `legacy` cargo feature for one
//! release.

use crate::audit::{audit_moves, audit_placement, AuditReport};
use crate::centralized::centralized_migration_obs;
use crate::distributed::{distributed_round_obs, select_victims, DistributedReport};
use crate::fabric::{fabric_round_failover_obs, FabricConfig};
use crate::failure::RegionFailover;
use crate::sharded::{sharded_round_obs, ShardedReport};
use crate::vmmigration::{MigrationContext, MigrationPlan};
use dcn_sim::engine::Cluster;
use dcn_sim::{Alert, RackMetric};
use dcn_topology::{RackId, VmId};
use sheriff_obs::{emit, Event, EventSink};

/// Everything one management round needs: the mutable cluster, the
/// precomputed cost metric, this period's alerts with their ALERT
/// magnitudes, and the event sink observing the round.
///
/// The sink is a `&mut dyn EventSink` (not a generic parameter) so
/// `Runtime` stays object-safe — heterogeneous `Box<dyn Runtime>`
/// bakeoffs are the point of the trait.
pub struct RunCtx<'a> {
    /// Cluster state; `step` mutates its placement in place.
    pub cluster: &'a mut Cluster,
    /// Precomputed rack-to-rack migration-cost metric.
    pub metric: &'a RackMetric,
    /// Pre-alerts raised this management period.
    pub alerts: &'a [Alert],
    /// `alert_values[vm.index()]` is the ALERT magnitude used by
    /// PRIORITY's `w = 1` branch.
    pub alert_values: &'a [f64],
    /// Observer for the round's structured events.
    pub sink: &'a mut dyn EventSink,
}

/// What one [`Runtime::step`] did, across all four runtimes. Fields a
/// runtime does not track (e.g. `ticks` outside the fabric) stay zero.
#[derive(Debug, Clone, Default)]
pub struct RoundOutcome {
    /// Merged migration plan of the round.
    pub plan: MigrationPlan,
    /// Shims (or managers) that participated.
    pub shims: usize,
    /// Commit attempts rejected and replanned.
    pub retries: usize,
    /// Messages lost by the channel (fabric only).
    pub drops: usize,
    /// Requests whose reply deadline expired at least once (fabric only).
    pub timeouts: usize,
    /// Retransmissions sent after timeouts (fabric only).
    pub resends: usize,
    /// Duplicate REQUEST deliveries absorbed by dedup logs.
    pub dedup_hits: usize,
    /// Shims that ran with part of their region presumed dead.
    pub degraded_shims: usize,
    /// Alerted shims that were crashed and could not participate.
    pub crashed_shims: usize,
    /// Virtual ticks the round took (fabric only).
    pub ticks: u64,
    /// Migration transactions that entered PREPARE (fabric only).
    pub txn_prepared: usize,
    /// Transactions that finished COMMIT (fabric only).
    pub txn_committed: usize,
    /// Transactions aborted — explicit or lease-expired (fabric only).
    pub txn_aborted: usize,
    /// Shims that crashed mid-round and came back (fabric only).
    pub recoveries: usize,
    /// Regional takeovers of Dead shims' racks, each bumping an epoch
    /// (fabric only).
    pub takeovers: usize,
    /// 2PC messages fenced for carrying a superseded epoch (fabric only).
    pub fenced: usize,
    /// Shims that planned in partition-degraded local mode (fabric only).
    pub partition_degraded: usize,
    /// Pending VMs dropped at partition heal because another manager
    /// handled them during the cut (fabric only).
    pub reconciliations: usize,
    /// Migration pre-copies admitted by the transfer scheduler (fabric
    /// only, zero unless the transfer model is enabled).
    pub transfers_started: usize,
    /// Pre-copies that streamed to completion and finalized COMMIT.
    pub transfers_completed: usize,
    /// Transfers steered off their shortest path by QCN congestion.
    pub transfer_reroutes: usize,
    /// 95th-percentile transfer completion time in virtual ticks
    /// (nearest-rank over this round's completed transfers; 0.0 when
    /// none completed).
    pub transfer_p95_completion: f64,
    /// True when some link carried two or more concurrent transfers —
    /// the round paid a bottleneck serialization penalty.
    pub bottleneck_serialized: bool,
    /// Streams stalled by a link failure mid-copy.
    pub transfer_stalls: usize,
    /// Backoff retries attempted by stalled streams.
    pub transfer_retries: usize,
    /// Streams that exhausted their retry budget and aborted.
    pub transfer_failures: usize,
    /// Bytes checkpointed resumes avoided re-copying versus a restart
    /// from zero.
    pub resumed_bytes_saved: f64,
    /// Post-round invariant audit — clean unless a bug corrupted state.
    pub audit: AuditReport,
}

/// Nearest-rank p95 over a set of transfer durations, 0.0 when empty.
fn p95_ticks(durations: &[u64]) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    let mut sorted = durations.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64) * 0.95).ceil() as usize;
    let idx = rank.saturating_sub(1).min(sorted.len() - 1);
    sorted.get(idx).copied().unwrap_or(0) as f64
}

impl From<DistributedReport> for RoundOutcome {
    fn from(r: DistributedReport) -> Self {
        Self {
            plan: r.plan,
            shims: r.shims,
            retries: r.retries,
            drops: r.drops,
            timeouts: r.timeouts,
            resends: r.resends,
            dedup_hits: r.dedup_hits,
            degraded_shims: r.degraded_shims,
            crashed_shims: r.crashed_shims,
            ticks: r.ticks,
            txn_prepared: r.txn_prepared,
            txn_committed: r.txn_committed,
            txn_aborted: r.txn_aborted,
            recoveries: r.recoveries,
            takeovers: r.takeovers,
            fenced: r.fenced,
            partition_degraded: r.partition_degraded,
            reconciliations: r.reconciliations,
            transfers_started: r.transfers_started,
            transfers_completed: r.transfers_completed,
            transfer_reroutes: r.transfer_reroutes,
            transfer_p95_completion: p95_ticks(&r.transfer_durations),
            bottleneck_serialized: r.transfer_peak_sharing >= 2,
            transfer_stalls: r.transfer_stalls,
            transfer_retries: r.transfer_retries,
            transfer_failures: r.transfer_failures,
            resumed_bytes_saved: r.resumed_bytes_saved,
            audit: r.audit,
        }
    }
}

impl From<ShardedReport> for RoundOutcome {
    fn from(r: ShardedReport) -> Self {
        let mut plan = r.plan;
        plan.rejected += r.rejected;
        Self {
            plan,
            shims: r.shims,
            ..Self::default()
        }
    }
}

/// One management loop: given this period's alerts, mutate the cluster's
/// placement and report what happened.
pub trait Runtime {
    /// Stable identifier for reports and trace labels.
    fn name(&self) -> &'static str;

    /// Run one management round.
    fn step(&mut self, ctx: &mut RunCtx<'_>) -> RoundOutcome;
}

/// The centralized global manager of Sec. VI-B behind the [`Runtime`]
/// trait: Alg. 1/2 victim selection per alerted rack, then one global
/// VMMIGRATION whose destination set is every rack in the network.
#[derive(Debug, Clone)]
pub struct CentralizedRuntime {
    /// Replan rounds for the global matching.
    pub max_rounds: usize,
}

impl Default for CentralizedRuntime {
    fn default() -> Self {
        Self { max_rounds: 3 }
    }
}

impl Runtime for CentralizedRuntime {
    fn name(&self) -> &'static str {
        "centralized"
    }

    fn step(&mut self, ctx: &mut RunCtx<'_>) -> RoundOutcome {
        let mut racks: Vec<RackId> = ctx.alerts.iter().map(|a| a.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        let mut candidates: Vec<VmId> = Vec::new();
        for &rack in &racks {
            let (selected, pool) = select_victims(
                &ctx.cluster.placement,
                &ctx.cluster.dcn.inventory,
                &ctx.cluster.sim,
                rack,
                ctx.alerts,
                ctx.alert_values,
            );
            emit(&mut *ctx.sink, || Event::VictimsSelected {
                rack: rack.index() as u64,
                candidates: pool as u64,
                selected: selected.len() as u64,
            });
            candidates.extend(selected);
        }
        candidates.sort_unstable();
        candidates.dedup();
        let plan = {
            let mut mctx = MigrationContext {
                placement: &mut ctx.cluster.placement,
                inventory: &ctx.cluster.dcn.inventory,
                deps: &ctx.cluster.deps,
                metric: ctx.metric,
                sim: &ctx.cluster.sim,
            };
            centralized_migration_obs(&mut mctx, &candidates, self.max_rounds, &mut *ctx.sink)
        };
        let mut audit = audit_placement(&ctx.cluster.placement, &ctx.cluster.deps);
        audit.merge(audit_moves(
            &ctx.cluster.placement,
            plan.moves.iter().map(|m| (m.vm, m.to)),
        ));
        RoundOutcome {
            plan,
            shims: if racks.is_empty() { 0 } else { 1 },
            audit,
            ..RoundOutcome::default()
        }
    }
}

/// The shared-lock threaded runtime behind the [`Runtime`] trait: one
/// planner thread per alerted shim, commits FCFS through the destination
/// racks' protocol endpoints.
#[derive(Debug, Clone)]
pub struct DistributedRuntime {
    /// Replan rounds per shim after the first.
    pub max_retry: usize,
}

impl Default for DistributedRuntime {
    fn default() -> Self {
        Self { max_retry: 3 }
    }
}

impl Runtime for DistributedRuntime {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn step(&mut self, ctx: &mut RunCtx<'_>) -> RoundOutcome {
        distributed_round_obs(
            ctx.cluster,
            ctx.metric,
            ctx.alerts,
            ctx.alert_values,
            self.max_retry,
            &mut *ctx.sink,
        )
        .into()
    }
}

/// The sharded message-passing runtime behind the [`Runtime`] trait:
/// per-rack agent threads own their capacity shards; planners negotiate
/// over channels.
#[derive(Debug, Clone, Default)]
pub struct ShardedRuntime;

impl Runtime for ShardedRuntime {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn step(&mut self, ctx: &mut RunCtx<'_>) -> RoundOutcome {
        let mut out: RoundOutcome = sharded_round_obs(
            ctx.cluster,
            ctx.metric,
            ctx.alerts,
            ctx.alert_values,
            &mut *ctx.sink,
        )
        .into();
        out.audit = audit_placement(&ctx.cluster.placement, &ctx.cluster.deps);
        out.audit.merge(audit_moves(
            &ctx.cluster.placement,
            out.plan.moves.iter().map(|m| (m.vm, m.to)),
        ));
        out
    }
}

/// The virtual-time fabric runtime behind the [`Runtime`] trait:
/// REQUEST/ACK/REJECT over a seeded faulty channel with timeouts,
/// backoff, dedup and heartbeat liveness, plus persistent
/// partition-tolerance state — the failure detector's silence clock,
/// regional epochs, and manager table all survive across rounds, so a
/// shim that stays dark is eventually declared Dead and taken over even
/// when each individual round is short.
///
/// `step()` is a facade over the [`crate::sim`] event core: the round
/// runs as a virtual-time event agenda (beacons, crash/heal windows,
/// deliveries, timeouts, leases, detector transitions) and returns at
/// the round boundary, so callers keep the familiar one-call-per-round
/// shape while per-rack event cadences
/// ([`FabricConfig::with_beacon_interval`],
/// [`FabricConfig::with_alert_check`]) fire inside the round.
#[derive(Debug, Clone, Default)]
pub struct FabricRuntime {
    /// Channel fault model, seed, backoff and liveness configuration.
    pub cfg: FabricConfig,
    /// Cross-round failover state (detector, epochs, managers).
    pub failover: RegionFailover,
}

impl FabricRuntime {
    /// Runtime for `cfg`, with the failure detector's thresholds derived
    /// from the config's heartbeat period and liveness deadline.
    pub fn with_config(cfg: FabricConfig) -> Self {
        let failover = RegionFailover::new(cfg.heartbeat_every().max(1), cfg.liveness_deadline);
        Self { cfg, failover }
    }
}

impl Runtime for FabricRuntime {
    fn name(&self) -> &'static str {
        "fabric"
    }

    fn step(&mut self, ctx: &mut RunCtx<'_>) -> RoundOutcome {
        fabric_round_failover_obs(
            ctx.cluster,
            ctx.metric,
            ctx.alerts,
            ctx.alert_values,
            &self.cfg,
            &mut self.failover,
            &mut *ctx.sink,
        )
        .into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::ClusterConfig;
    use dcn_sim::SimConfig;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use sheriff_obs::{NullSink, RingRecorder};

    fn cluster(seed: u64) -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(8));
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 3.0,
                seed,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        )
    }

    fn alert_values(c: &Cluster) -> Vec<f64> {
        c.placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect()
    }

    #[test]
    fn every_runtime_reduces_imbalance_through_one_interface() {
        let runtimes: Vec<Box<dyn Runtime>> = vec![
            Box::new(CentralizedRuntime::default()),
            Box::new(DistributedRuntime::default()),
            Box::new(ShardedRuntime),
            Box::new(FabricRuntime::default()),
        ];
        for mut rt in runtimes {
            let mut c = cluster(91);
            let metric = RackMetric::build(&c.dcn, &c.sim);
            let before = c.utilization_stddev();
            for t in 0..4 {
                let alerts = c.fraction_alerts(0.08, t);
                let vals = alert_values(&c);
                let mut ctx = RunCtx {
                    cluster: &mut c,
                    metric: &metric,
                    alerts: &alerts,
                    alert_values: &vals,
                    sink: &mut NullSink,
                };
                let out = rt.step(&mut ctx);
                assert!(out.shims > 0, "{}: no shims ran", rt.name());
            }
            let after = c.utilization_stddev();
            assert!(after < before, "{}: std-dev {before} -> {after}", rt.name());
        }
    }

    #[test]
    fn distributed_runtime_matches_the_obs_function() {
        let mut via_trait = cluster(92);
        let mut via_fn = cluster(92);
        let metric = RackMetric::build(&via_trait.dcn, &via_trait.sim);
        let alerts = via_trait.fraction_alerts(0.10, 0);
        let vals = alert_values(&via_trait);

        let mut rt = DistributedRuntime { max_retry: 3 };
        let mut ctx = RunCtx {
            cluster: &mut via_trait,
            metric: &metric,
            alerts: &alerts,
            alert_values: &vals,
            sink: &mut NullSink,
        };
        let a = rt.step(&mut ctx);
        let b = crate::distributed::distributed_round_obs(
            &mut via_fn,
            &metric,
            &alerts,
            &vals,
            3,
            &mut NullSink,
        );

        assert_eq!(a.plan.moves.len(), b.plan.moves.len());
        assert!((a.plan.total_cost - b.plan.total_cost).abs() < 1e-9);
        for vm in via_trait.placement.vm_ids() {
            assert_eq!(
                via_trait.placement.host_of(vm),
                via_fn.placement.host_of(vm)
            );
        }
    }

    #[test]
    fn trait_step_streams_events_through_the_ctx_sink() {
        let mut c = cluster(93);
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.10, 0);
        let vals = alert_values(&c);
        let mut rec = RingRecorder::new(4096);
        let mut rt = FabricRuntime::default();
        let out = rt.step(&mut RunCtx {
            cluster: &mut c,
            metric: &metric,
            alerts: &alerts,
            alert_values: &vals,
            sink: &mut rec,
        });
        assert!(!out.plan.moves.is_empty());
        assert_eq!(
            rec.count_kind("migration_committed"),
            out.plan.moves.len(),
            "one commit event per recorded move"
        );
        assert!(rec.count_kind("request_sent") >= rec.count_kind("ack_received"));
        assert_eq!(
            rec.counters().get("migrations.committed"),
            out.plan.moves.len() as u64
        );
    }
}

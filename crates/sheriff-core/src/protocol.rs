//! Typed shim-to-shim messages and the endpoint logic that keeps Alg. 4
//! correct over an unreliable channel.
//!
//! The paper's negotiation (Sec. II-B/V-B) assumes REQUEST/ACK/REJECT
//! exchanges always arrive; Sec. III-A waves crashes off to a "backup
//! system". This module supplies the missing machinery: request ids and a
//! dedup log make the destination commit idempotent (a retransmitted or
//! duplicated REQUEST can never double-book Eqn. 8 capacity), exponential
//! backoff with deterministic jitter paces retransmissions, and a
//! heartbeat ledger lets a source shim exclude dead neighbours from its
//! matching instead of waiting on them forever.

use crate::journal::{AbortOutcome, IntentJournal, RecoveryReport, TxnState};
use crate::request::{request_migration, RequestOutcome};
use dcn_topology::{DependencyGraph, HostId, Placement, RackId, VmId};
use std::collections::HashMap;
use std::fmt;

/// Globally unique id of one migration REQUEST. Encodes the source shim's
/// rack in the high half and a per-shim sequence number in the low half,
/// so concurrent shims can mint ids without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

impl ReqId {
    /// Mint the `seq`-th request id of `source`'s shim.
    pub fn new(source: RackId, seq: u32) -> Self {
        Self(((source.index() as u64) << 32) | seq as u64)
    }

    /// The rack whose shim issued this request.
    pub fn source(self) -> RackId {
        RackId::from_index((self.0 >> 32) as usize)
    }
}

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req:{}#{}", self.source(), self.0 as u32)
    }
}

/// Why a destination refused a REQUEST (the REJECT payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The host no longer has Eqn. 8 capacity for the VM.
    Capacity,
    /// A dependent VM occupies the host (χ constraint, Eqn. 7).
    Conflict,
    /// The VM is already on that host — a duplicate of an applied move or
    /// a stale plan.
    Noop,
    /// The transaction was aborted (lease lapsed or ABORT arrived) before
    /// this message; the source must replan from scratch.
    Expired,
    /// The message carried an epoch older than the rack's current epoch:
    /// the sender missed a takeover and is fenced. The `Reject` carrying
    /// this reason reports the current epoch so the sender can adopt it.
    StaleEpoch,
}

/// A destination's verdict on one REQUEST — what the dedup log replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Migration committed.
    Ack,
    /// Migration refused.
    Reject(RejectReason),
}

impl Verdict {
    /// Whether the request was accepted.
    pub fn is_ack(self) -> bool {
        matches!(self, Verdict::Ack)
    }
}

impl From<RequestOutcome> for Verdict {
    fn from(o: RequestOutcome) -> Self {
        match o {
            RequestOutcome::Ack => Verdict::Ack,
            RequestOutcome::RejectCapacity => Verdict::Reject(RejectReason::Capacity),
            RequestOutcome::RejectConflict => Verdict::Reject(RejectReason::Conflict),
            RequestOutcome::RejectNoop => Verdict::Reject(RejectReason::Noop),
        }
    }
}

/// One message on the shim control plane.
///
/// Every variant carries the sender's view of its own rack's epoch so a
/// receiver can fence messages minted before a takeover; `Reject` with
/// [`RejectReason::StaleEpoch`] instead carries the *receiver's* current
/// epoch so the fenced sender can adopt it. Pre-failover traffic carries
/// epoch 0 everywhere, which compares equal and changes nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShimMsg {
    /// A shim announcing itself when a round starts.
    Hello {
        /// The announcing shim's rack.
        rack: RackId,
        /// The announcing shim's view of its own rack's epoch.
        epoch: u64,
    },
    /// Periodic liveness beacon.
    Heartbeat {
        /// The beating shim's rack.
        rack: RackId,
        /// Virtual time at which it was sent.
        tick: u64,
        /// The beating shim's view of its own rack's epoch.
        epoch: u64,
    },
    /// Ask the destination's delegation node to accept a migration
    /// (Alg. 4). Retransmissions reuse the same `req_id`.
    Request {
        /// Request id (stable across retransmissions).
        req_id: ReqId,
        /// The VM to migrate.
        vm: VmId,
        /// The host it should land on.
        dest: HostId,
        /// The sender's view of its own rack's epoch.
        epoch: u64,
    },
    /// The destination committed the migration.
    Ack {
        /// Id of the accepted request.
        req_id: ReqId,
        /// The sender's view of its own rack's epoch.
        epoch: u64,
    },
    /// The destination refused the migration; the source must replan.
    Reject {
        /// Id of the refused request.
        req_id: ReqId,
        /// Why it was refused.
        reason: RejectReason,
        /// The sender's epoch — for `StaleEpoch` this is the fencing
        /// rack's *current* epoch, which the fenced sender must adopt.
        epoch: u64,
    },
    /// Phase 1 of a crash-consistent migration: ask the destination to
    /// reserve the move and journal the intent. Supersedes `Request` for
    /// the fabric runtime; retransmissions reuse the same `req_id`.
    Prepare {
        /// Transaction id (stable across retransmissions).
        req_id: ReqId,
        /// The VM to migrate.
        vm: VmId,
        /// The host it should land on.
        dest: HostId,
        /// Virtual time after which an orphaned prepare self-aborts.
        lease: u64,
        /// The sender's view of its own rack's epoch.
        epoch: u64,
    },
    /// The destination journalled the intent and voted yes.
    PrepareOk {
        /// Id of the prepared transaction.
        req_id: ReqId,
        /// The sender's view of its own rack's epoch.
        epoch: u64,
    },
    /// Phase 2: finalize a prepared transaction. Answered with `Ack`.
    Commit {
        /// Id of the transaction to finish.
        req_id: ReqId,
        /// The sender's view of its own rack's epoch.
        epoch: u64,
    },
    /// The source walked away; undo the prepared transaction.
    Abort {
        /// Id of the transaction to undo.
        req_id: ReqId,
        /// The sender's view of its own rack's epoch.
        epoch: u64,
    },
}

impl ShimMsg {
    /// The epoch the message carries, whatever the variant.
    pub fn epoch(&self) -> u64 {
        match self {
            ShimMsg::Hello { epoch, .. }
            | ShimMsg::Heartbeat { epoch, .. }
            | ShimMsg::Request { epoch, .. }
            | ShimMsg::Ack { epoch, .. }
            | ShimMsg::Reject { epoch, .. }
            | ShimMsg::Prepare { epoch, .. }
            | ShimMsg::PrepareOk { epoch, .. }
            | ShimMsg::Commit { epoch, .. }
            | ShimMsg::Abort { epoch, .. } => *epoch,
        }
    }
}

/// The destination's answer to one delivered 2PC message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoPhaseReply {
    /// PREPARE accepted: intent journalled, placement reserved.
    PrepareOk,
    /// COMMIT applied (or replayed); the transaction is final.
    Ack,
    /// The message was refused; the payload says why.
    Reject(RejectReason),
}

/// Retransmission policy: exponential backoff with deterministic jitter.
///
/// Attempt `n` waits `base · 2ⁿ` ticks (capped at `cap`) plus a jitter in
/// `[0, base)` hashed from `(req_id, attempt)` — deterministic for
/// reproducibility, yet decorrelated across requests so synchronized
/// timeouts don't retransmit in lockstep.
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    /// First-attempt deadline in ticks; must exceed one round trip.
    pub base: u64,
    /// Upper bound on the backoff term.
    pub cap: u64,
    /// Total send attempts before the source gives up on the request.
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base: 8,
            cap: 64,
            max_attempts: 4,
        }
    }
}

impl BackoffPolicy {
    /// Ticks to wait for a reply to attempt `attempt` (0-based).
    pub fn delay(&self, attempt: u32, req_id: ReqId) -> u64 {
        let exp = self
            .base
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cap.max(self.base));
        let jitter = if self.base > 1 {
            // SplitMix64 over (req_id, attempt): stable, but different
            // requests back off on different schedules
            let mut z = req_id.0 ^ ((attempt as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) % self.base
        } else {
            0
        };
        exp + jitter
    }
}

/// Replay log making the destination commit idempotent: the first
/// decision for a `req_id` is recorded and every later copy of that
/// request — retransmission or channel duplicate — gets the recorded
/// verdict back without touching the placement again.
#[derive(Debug, Clone, Default)]
pub struct DedupLog {
    seen: HashMap<ReqId, Verdict>,
    hits: usize,
}

impl DedupLog {
    /// Look up a previously decided request, counting a hit if found.
    pub fn replay(&mut self, id: ReqId) -> Option<Verdict> {
        let v = self.seen.get(&id).copied();
        if v.is_some() {
            self.hits += 1;
        }
        v
    }

    /// Record the verdict for a fresh request.
    pub fn record(&mut self, id: ReqId, verdict: Verdict) {
        self.seen.insert(id, verdict);
    }

    /// How many duplicate requests were absorbed.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Count a duplicate that was absorbed outside the log itself (e.g.
    /// replayed from the intent journal instead).
    pub fn note_hit(&mut self) {
        self.hits += 1;
    }

    /// Number of distinct requests decided.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no request has been decided yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// A rack's delegation node: the destination side of Alg. 4, hardened
/// with the dedup log so it is safe to call once per *delivered copy* of
/// a REQUEST rather than once per request.
#[derive(Debug, Clone)]
pub struct ShimEndpoint {
    /// The rack this endpoint speaks for.
    pub rack: RackId,
    dedup: DedupLog,
    journal: IntentJournal,
}

impl ShimEndpoint {
    /// Endpoint for one rack.
    pub fn new(rack: RackId) -> Self {
        Self {
            rack,
            dedup: DedupLog::default(),
            journal: IntentJournal::new(),
        }
    }

    /// Decide one delivered REQUEST copy against the authoritative
    /// placement. First delivery runs Alg. 4 and commits on ACK; every
    /// later delivery of the same `req_id` replays the recorded verdict.
    pub fn handle_request(
        &mut self,
        placement: &mut Placement,
        deps: &DependencyGraph,
        req_id: ReqId,
        vm: VmId,
        dest: HostId,
    ) -> Verdict {
        if let Some(v) = self.dedup.replay(req_id) {
            return v;
        }
        let verdict = Verdict::from(request_migration(placement, deps, vm, dest));
        self.dedup.record(req_id, verdict);
        verdict
    }

    /// Decide one delivered PREPARE copy. A fresh prepare runs Alg. 4,
    /// reserves the move in the placement and journals the intent (with
    /// the sender's epoch) before voting yes; duplicates replay the
    /// journalled decision, and prepares for an already aborted
    /// transaction are refused with `Expired` (presumed abort).
    #[allow(clippy::too_many_arguments)] // the 2PC wire fields + epoch fence
    pub fn handle_prepare(
        &mut self,
        placement: &mut Placement,
        deps: &DependencyGraph,
        req_id: ReqId,
        vm: VmId,
        dest: HostId,
        lease: u64,
        epoch: u64,
    ) -> TwoPhaseReply {
        match self.journal.state(req_id) {
            Some(TxnState::Prepared) => {
                self.dedup.note_hit();
                return TwoPhaseReply::PrepareOk;
            }
            Some(TxnState::Committed) => {
                self.dedup.note_hit();
                return TwoPhaseReply::Ack;
            }
            Some(TxnState::Aborted) => return TwoPhaseReply::Reject(RejectReason::Expired),
            None => {}
        }
        if let Some(v) = self.dedup.replay(req_id) {
            return match v {
                Verdict::Ack => TwoPhaseReply::Ack,
                Verdict::Reject(reason) => TwoPhaseReply::Reject(reason),
            };
        }
        let src = placement.host_of(vm);
        match Verdict::from(request_migration(placement, deps, vm, dest)) {
            Verdict::Ack => {
                self.journal.prepare(req_id, vm, src, dest, lease, epoch);
                TwoPhaseReply::PrepareOk
            }
            Verdict::Reject(reason) => {
                self.dedup.record(req_id, Verdict::Reject(reason));
                TwoPhaseReply::Reject(reason)
            }
        }
    }

    /// Decide one delivered COMMIT copy: finalize a prepared transaction
    /// (idempotently re-ACK a committed one); a commit for an aborted or
    /// unknown transaction is refused with `Expired`, and a commit
    /// carrying an epoch *older* than the one its own prepare was
    /// journalled under is refused with `StaleEpoch` — the journal-level
    /// backstop behind the loop-level fence.
    pub fn handle_commit(&mut self, req_id: ReqId, epoch: u64) -> TwoPhaseReply {
        match self.journal.state(req_id) {
            Some(TxnState::Prepared) => {
                if self.journal.get(req_id).is_some_and(|r| epoch < r.epoch) {
                    return TwoPhaseReply::Reject(RejectReason::StaleEpoch);
                }
                self.journal.commit(req_id);
                TwoPhaseReply::Ack
            }
            Some(TxnState::Committed) => {
                self.dedup.note_hit();
                TwoPhaseReply::Ack
            }
            Some(TxnState::Aborted) | None => TwoPhaseReply::Reject(RejectReason::Expired),
        }
    }

    /// Process one delivered ABORT: undo a prepared transaction (rolling
    /// back, or committing forward if rollback is impossible). An abort
    /// for an unknown id leaves an `Expired` tombstone in the dedup log
    /// so a late retransmitted PREPARE with the same id is refused.
    /// Returns the aborted VM and how the abort resolved, when one was
    /// actually pending.
    pub fn handle_abort(
        &mut self,
        placement: &mut Placement,
        deps: &DependencyGraph,
        req_id: ReqId,
    ) -> Option<(VmId, AbortOutcome)> {
        match self.journal.state(req_id) {
            Some(TxnState::Prepared) => {
                let vm = self.journal.get(req_id).map(|r| r.vm)?;
                let outcome = self.journal.abort(placement, deps, req_id);
                Some((vm, outcome))
            }
            Some(_) => None,
            None => {
                if self.dedup.replay(req_id).is_none() {
                    self.dedup
                        .record(req_id, Verdict::Reject(RejectReason::Expired));
                }
                None
            }
        }
    }

    /// Abort every journalled prepare whose lease is `<= now`.
    pub fn expire_leases(
        &mut self,
        placement: &mut Placement,
        deps: &DependencyGraph,
        now: u64,
    ) -> Vec<(ReqId, VmId)> {
        self.journal.expire_leases(placement, deps, now)
    }

    /// Replay the journal after a crash: re-ACKs to send, orphaned
    /// prepares aborted, in-lease prepares kept.
    pub fn recover(
        &mut self,
        placement: &mut Placement,
        deps: &DependencyGraph,
        now: u64,
    ) -> RecoveryReport {
        self.journal.recover(placement, deps, now)
    }

    /// Epoch-aware crash recovery: like [`ShimEndpoint::recover`], but
    /// prepares journalled under an epoch older than their source rack's
    /// current epoch are aborted even when their lease is still live —
    /// the source was taken over, so its COMMIT will never legitimately
    /// arrive. Rollback when possible, commit-forward otherwise.
    pub fn recover_fenced(
        &mut self,
        placement: &mut Placement,
        deps: &DependencyGraph,
        now: u64,
        epochs: &std::collections::BTreeMap<RackId, u64>,
    ) -> RecoveryReport {
        self.journal
            .recover_with_epochs(placement, deps, now, epochs)
    }

    /// Read access to the intent journal (the auditor's input).
    pub fn journal(&self) -> &IntentJournal {
        &self.journal
    }

    /// Extend a prepared transaction's lease to at least `until`. The
    /// fabric calls this when a COMMIT hands the migration to the
    /// transfer scheduler: while the pre-copy streams, the periodic
    /// lease sweep must not abort the reservation out from under it.
    /// Returns `false` when the id is unknown or not `Prepared`.
    pub fn extend_lease(&mut self, id: ReqId, until: u64) -> bool {
        self.journal.extend_lease(id, until)
    }

    /// The earliest lease deadline among still-prepared transactions —
    /// the next tick at which [`ShimEndpoint::expire_leases`] could do
    /// anything, which is what an event-driven sweep schedules on.
    pub fn next_lease(&self) -> Option<u64> {
        self.journal.next_lease()
    }

    /// Build the reply message for a verdict, stamped with the replying
    /// shim's epoch.
    pub fn reply_msg(req_id: ReqId, verdict: Verdict, epoch: u64) -> ShimMsg {
        match verdict {
            Verdict::Ack => ShimMsg::Ack { req_id, epoch },
            Verdict::Reject(reason) => ShimMsg::Reject {
                req_id,
                reason,
                epoch,
            },
        }
    }

    /// Build the reply message for a 2PC reply, stamped with the replying
    /// shim's epoch.
    pub fn reply_2pc_msg(req_id: ReqId, reply: TwoPhaseReply, epoch: u64) -> ShimMsg {
        match reply {
            TwoPhaseReply::PrepareOk => ShimMsg::PrepareOk { req_id, epoch },
            TwoPhaseReply::Ack => ShimMsg::Ack { req_id, epoch },
            TwoPhaseReply::Reject(reason) => ShimMsg::Reject {
                req_id,
                reason,
                epoch,
            },
        }
    }

    /// Duplicate requests absorbed by this endpoint.
    pub fn dedup_hits(&self) -> usize {
        self.dedup.hits()
    }
}

/// A source shim's view of which neighbour shims are alive, fed by
/// `Hello`/`Heartbeat` messages. A rack is alive iff it has been heard
/// from within `deadline` ticks; crashed shims simply fall silent and age
/// out, after which the matching excludes their hosts.
#[derive(Debug, Clone)]
pub struct Liveness {
    last_seen: HashMap<RackId, u64>,
    /// Maximum silence before a rack is presumed dead.
    pub deadline: u64,
}

impl Liveness {
    /// Fresh ledger with the given silence deadline.
    pub fn new(deadline: u64) -> Self {
        Self {
            last_seen: HashMap::new(),
            deadline,
        }
    }

    /// Record a beacon from `rack` at `tick`.
    pub fn observe(&mut self, rack: RackId, tick: u64) {
        let e = self.last_seen.entry(rack).or_insert(tick);
        if *e < tick {
            *e = tick;
        }
    }

    /// Forget a rack, e.g. after its requests time out repeatedly — the
    /// degradation ladder's "presume dead" step.
    pub fn presume_dead(&mut self, rack: RackId) {
        self.last_seen.remove(&rack);
    }

    /// Whether `rack` has been heard from within the deadline.
    pub fn alive(&self, rack: RackId, now: u64) -> bool {
        self.last_seen
            .get(&rack)
            .is_some_and(|&seen| now.saturating_sub(seen) <= self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::{Inventory, VmSpec};

    fn small() -> (Placement, DependencyGraph) {
        let mut inv = Inventory::new();
        inv.add_rack(2, 10.0, 100.0);
        let mut p = Placement::new(&inv);
        let s = VmSpec {
            id: p.next_vm_id(),
            capacity: 6.0,
            value: 1.0,
            delay_sensitive: false,
        };
        p.add_vm(s, HostId(0)).unwrap();
        (p, DependencyGraph::new(1))
    }

    #[test]
    fn req_id_roundtrips_source() {
        let id = ReqId::new(RackId(7), 42);
        assert_eq!(id.source(), RackId(7));
        assert_ne!(ReqId::new(RackId(7), 43), id);
        assert_ne!(ReqId::new(RackId(8), 42), id);
    }

    #[test]
    fn duplicate_request_replays_without_double_commit() {
        let (mut p, deps) = small();
        let mut ep = ShimEndpoint::new(RackId(0));
        let id = ReqId::new(RackId(0), 0);
        let v1 = ep.handle_request(&mut p, &deps, id, VmId(0), HostId(1));
        assert_eq!(v1, Verdict::Ack);
        assert_eq!(p.host_of(VmId(0)), HostId(1));
        // a second copy of the same request must not re-run Alg. 4 (which
        // would now see a no-op and REJECT, confusing the source)
        let v2 = ep.handle_request(&mut p, &deps, id, VmId(0), HostId(1));
        assert_eq!(v2, Verdict::Ack);
        assert_eq!(ep.dedup_hits(), 1);
        assert_eq!(p.host_of(VmId(0)), HostId(1));
    }

    #[test]
    fn fresh_request_after_commit_gets_noop_reject() {
        let (mut p, deps) = small();
        let mut ep = ShimEndpoint::new(RackId(0));
        assert!(ep
            .handle_request(&mut p, &deps, ReqId::new(RackId(0), 0), VmId(0), HostId(1))
            .is_ack());
        // a *different* request id for the same move is a new decision
        let v = ep.handle_request(&mut p, &deps, ReqId::new(RackId(0), 1), VmId(0), HostId(1));
        assert_eq!(v, Verdict::Reject(RejectReason::Noop));
        assert_eq!(ep.dedup_hits(), 0);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let b = BackoffPolicy {
            base: 8,
            cap: 64,
            max_attempts: 5,
        };
        let id = ReqId::new(RackId(1), 1);
        let d0 = b.delay(0, id);
        let d1 = b.delay(1, id);
        let d3 = b.delay(3, id);
        assert!((8..16).contains(&d0), "{d0}");
        assert!((16..24).contains(&d1), "{d1}");
        assert!((64..72).contains(&d3), "capped: {d3}");
        // deterministic
        assert_eq!(d1, b.delay(1, id));
        // jitter decorrelates requests
        let other = ReqId::new(RackId(2), 9);
        assert!((8..16).contains(&b.delay(0, other)));
    }

    #[test]
    fn prepare_commit_acks_exactly_once() {
        let (mut p, deps) = small();
        let mut ep = ShimEndpoint::new(RackId(0));
        let id = ReqId::new(RackId(0), 0);
        let v = ep.handle_prepare(&mut p, &deps, id, VmId(0), HostId(1), 50, 0);
        assert_eq!(v, TwoPhaseReply::PrepareOk);
        assert_eq!(p.host_of(VmId(0)), HostId(1), "prepare reserves the move");
        // duplicate prepare replays the vote without re-running Alg. 4
        assert_eq!(
            ep.handle_prepare(&mut p, &deps, id, VmId(0), HostId(1), 50, 0),
            TwoPhaseReply::PrepareOk
        );
        assert_eq!(ep.dedup_hits(), 1);
        assert_eq!(ep.handle_commit(id, 0), TwoPhaseReply::Ack);
        // duplicate commit re-ACKs idempotently
        assert_eq!(ep.handle_commit(id, 0), TwoPhaseReply::Ack);
        assert_eq!(ep.journal().committed(), 1);
        // a prepare retransmitted after the commit still answers Ack
        assert_eq!(
            ep.handle_prepare(&mut p, &deps, id, VmId(0), HostId(1), 50, 0),
            TwoPhaseReply::Ack
        );
    }

    #[test]
    fn abort_rolls_back_and_tombstones() {
        let (mut p, deps) = small();
        let mut ep = ShimEndpoint::new(RackId(0));
        let id = ReqId::new(RackId(0), 0);
        ep.handle_prepare(&mut p, &deps, id, VmId(0), HostId(1), 50, 0);
        let (vm, outcome) = ep.handle_abort(&mut p, &deps, id).unwrap();
        assert_eq!(
            (vm, outcome),
            (VmId(0), crate::journal::AbortOutcome::RolledBack)
        );
        assert_eq!(p.host_of(VmId(0)), HostId(0));
        // a late commit for the aborted txn is refused
        assert_eq!(
            ep.handle_commit(id, 0),
            TwoPhaseReply::Reject(RejectReason::Expired)
        );
        // an abort for an id never prepared leaves a tombstone ...
        let stale = ReqId::new(RackId(0), 7);
        assert!(ep.handle_abort(&mut p, &deps, stale).is_none());
        // ... that refuses the late-arriving prepare
        assert_eq!(
            ep.handle_prepare(&mut p, &deps, stale, VmId(0), HostId(1), 50, 0),
            TwoPhaseReply::Reject(RejectReason::Expired)
        );
    }

    #[test]
    fn lease_expiry_aborts_orphaned_prepare() {
        let (mut p, deps) = small();
        let mut ep = ShimEndpoint::new(RackId(0));
        let id = ReqId::new(RackId(0), 0);
        ep.handle_prepare(&mut p, &deps, id, VmId(0), HostId(1), 10, 0);
        assert!(ep.expire_leases(&mut p, &deps, 9).is_empty(), "in lease");
        assert_eq!(ep.expire_leases(&mut p, &deps, 10), vec![(id, VmId(0))]);
        assert_eq!(p.host_of(VmId(0)), HostId(0), "rolled back");
        assert_eq!(
            ep.handle_commit(id, 0),
            TwoPhaseReply::Reject(RejectReason::Expired)
        );
    }

    #[test]
    fn stale_epoch_commit_is_fenced_at_the_journal() {
        let (mut p, deps) = small();
        let mut ep = ShimEndpoint::new(RackId(0));
        let id = ReqId::new(RackId(0), 0);
        // prepared under epoch 2 (post-takeover sender)
        assert_eq!(
            ep.handle_prepare(&mut p, &deps, id, VmId(0), HostId(1), 50, 2),
            TwoPhaseReply::PrepareOk
        );
        // a zombie's commit from epoch 1 is fenced, placement untouched
        assert_eq!(
            ep.handle_commit(id, 1),
            TwoPhaseReply::Reject(RejectReason::StaleEpoch)
        );
        assert_eq!(p.host_of(VmId(0)), HostId(1), "reservation still held");
        // the legitimate commit (same or newer epoch) still lands
        assert_eq!(ep.handle_commit(id, 2), TwoPhaseReply::Ack);
        assert_eq!(ep.journal().committed(), 1);
    }

    #[test]
    fn shim_msg_epoch_accessor_covers_every_variant() {
        let id = ReqId::new(RackId(0), 0);
        let msgs = [
            ShimMsg::Hello {
                rack: RackId(0),
                epoch: 3,
            },
            ShimMsg::Heartbeat {
                rack: RackId(0),
                tick: 5,
                epoch: 3,
            },
            ShimMsg::Request {
                req_id: id,
                vm: VmId(0),
                dest: HostId(0),
                epoch: 3,
            },
            ShimMsg::Ack {
                req_id: id,
                epoch: 3,
            },
            ShimMsg::Reject {
                req_id: id,
                reason: RejectReason::StaleEpoch,
                epoch: 3,
            },
            ShimMsg::Prepare {
                req_id: id,
                vm: VmId(0),
                dest: HostId(0),
                lease: 9,
                epoch: 3,
            },
            ShimMsg::PrepareOk {
                req_id: id,
                epoch: 3,
            },
            ShimMsg::Commit {
                req_id: id,
                epoch: 3,
            },
            ShimMsg::Abort {
                req_id: id,
                epoch: 3,
            },
        ];
        for m in msgs {
            assert_eq!(m.epoch(), 3, "{m:?}");
        }
    }

    #[test]
    fn liveness_ages_out_and_recovers() {
        let mut l = Liveness::new(5);
        l.observe(RackId(0), 10);
        assert!(l.alive(RackId(0), 15));
        assert!(!l.alive(RackId(0), 16));
        assert!(!l.alive(RackId(1), 0), "never heard from");
        l.observe(RackId(0), 20);
        assert!(l.alive(RackId(0), 22));
        l.presume_dead(RackId(0));
        assert!(!l.alive(RackId(0), 22));
    }
}

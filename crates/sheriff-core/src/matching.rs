//! Minimum-weight bipartite matching for Alg. 3 (VMMIGRATION pairs
//! candidate VMs with destination slots). The paper prescribes
//! "Minimal Weighted Matching with time complexity O(n³) … such as
//! Kuhn–Munkres with relaxation \[31\]"; this is the potentials form of the
//! Hungarian algorithm (Edmonds–Karp / Tomizawa), O(n²·m).

/// Cost value treated as "this pair is forbidden". Kept small enough that
/// sums of many forbidden entries retain f64 resolution against real costs
/// (at 1e18 the potentials arithmetic loses the low-order cost digits and
/// the matching can return a non-optimal row).
pub const FORBIDDEN: f64 = 1e9;

/// Solve the rectangular assignment problem: `cost[i][j]` is the cost of
/// assigning row `i` (a VM) to column `j` (a destination slot). Requires
/// `rows ≤ cols`. Returns, per row, the matched column (`None` when the
/// only available columns were [`FORBIDDEN`]), plus the total cost of the
/// real assignments.
pub fn min_cost_assignment(cost: &[Vec<f64>]) -> (Vec<Option<usize>>, f64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let m = cost[0].len();
    assert!(
        cost.iter().all(|r| r.len() == m),
        "cost matrix must be rectangular"
    );
    assert!(
        n <= m,
        "need at least as many columns as rows (pad if necessary)"
    );

    const INF: f64 = f64::INFINITY;
    // 1-indexed potentials; p[j] = row assigned to column j (0 = none)
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            debug_assert!(delta.is_finite(), "augmenting path must exist");
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // augment along the alternating path
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; n];
    let mut total = 0.0;
    for j in 1..=m {
        if p[j] != 0 {
            let i = p[j] - 1;
            let c = cost[i][j - 1];
            if c < FORBIDDEN / 2.0 {
                assignment[i] = Some(j - 1);
                total += c;
            }
        }
    }
    (assignment, total)
}

/// Convenience: pad a possibly-tall matrix (more rows than columns) with
/// forbidden dummy columns so [`min_cost_assignment`] applies; rows that
/// land on dummies return `None`.
pub fn min_cost_assignment_padded(cost: &[Vec<f64>]) -> (Vec<Option<usize>>, f64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let m = cost[0].len();
    if m == 0 {
        return (vec![None; n], 0.0);
    }
    if n <= m {
        return min_cost_assignment(cost);
    }
    let padded: Vec<Vec<f64>> = cost
        .iter()
        .map(|row| {
            let mut r = row.clone();
            r.resize(n, FORBIDDEN);
            r
        })
        .collect();
    let (mut assign, total) = min_cost_assignment(&padded);
    for a in assign.iter_mut() {
        if let Some(j) = *a {
            if j >= m {
                *a = None;
            }
        }
    }
    (assign, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimum for validation (n ≤ 8).
    fn brute(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let m = cost[0].len();
        let mut cols: Vec<usize> = (0..m).collect();
        let mut best = f64::INFINITY;
        permute(&mut cols, n, &mut |perm| {
            let total: f64 = perm
                .iter()
                .take(n)
                .enumerate()
                .map(|(i, &j)| {
                    let c = cost[i][j];
                    if c >= FORBIDDEN / 2.0 {
                        0.0
                    } else {
                        c
                    }
                })
                .sum();
            // only accept permutations with no forbidden pair
            let ok = perm
                .iter()
                .take(n)
                .enumerate()
                .all(|(i, &j)| cost[i][j] < FORBIDDEN / 2.0);
            if ok && total < best {
                best = total;
            }
        });
        best
    }

    fn permute(cols: &mut Vec<usize>, take: usize, f: &mut impl FnMut(&[usize])) {
        fn rec(cols: &mut Vec<usize>, k: usize, take: usize, f: &mut impl FnMut(&[usize])) {
            if k == take {
                f(cols);
                return;
            }
            for i in k..cols.len() {
                cols.swap(k, i);
                rec(cols, k + 1, take, f);
                cols.swap(k, i);
            }
        }
        rec(cols, 0, take, f);
    }

    #[test]
    fn square_known_instance() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let (assign, total) = min_cost_assignment(&cost);
        assert_eq!(total, 5.0); // 1 + 2 + 2
        assert_eq!(assign, vec![Some(1), Some(0), Some(2)]);
    }

    #[test]
    fn rectangular_more_columns() {
        let cost = vec![vec![10.0, 2.0, 8.0, 5.0], vec![7.0, 9.0, 1.0, 4.0]];
        let (assign, total) = min_cost_assignment(&cost);
        assert_eq!(total, 3.0);
        assert_eq!(assign, vec![Some(1), Some(2)]);
    }

    #[test]
    fn matches_bruteforce_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..30 {
            let n = rng.gen_range(2..=5);
            let m = rng.gen_range(n..=6);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..20.0)).collect())
                .collect();
            let (_, total) = min_cost_assignment(&cost);
            let expect = brute(&cost);
            assert!(
                (total - expect).abs() < 1e-9,
                "trial {trial}: got {total}, optimum {expect}"
            );
        }
    }

    #[test]
    fn forbidden_pairs_yield_none() {
        let cost = vec![vec![FORBIDDEN, FORBIDDEN], vec![1.0, FORBIDDEN]];
        let (assign, total) = min_cost_assignment(&cost);
        assert_eq!(assign[0], None);
        assert_eq!(assign[1], Some(0));
        assert_eq!(total, 1.0);
    }

    #[test]
    fn padded_handles_more_rows_than_columns() {
        let cost = vec![vec![5.0], vec![1.0], vec![3.0]];
        let (assign, total) = min_cost_assignment_padded(&cost);
        // only the cheapest row gets the single column
        assert_eq!(total, 1.0);
        assert_eq!(assign.iter().filter(|a| a.is_some()).count(), 1);
        assert_eq!(assign[1], Some(0));
    }

    #[test]
    fn empty_inputs() {
        let (a, t) = min_cost_assignment(&[]);
        assert!(a.is_empty());
        assert_eq!(t, 0.0);
        let (a, t) = min_cost_assignment_padded(&[vec![], vec![]]);
        assert_eq!(a, vec![None, None]);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn assignment_is_a_matching() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let cost: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..12).map(|_| rng.gen_range(0.0..9.0)).collect())
            .collect();
        let (assign, _) = min_cost_assignment(&cost);
        let mut seen = std::collections::HashSet::new();
        for a in assign.into_iter().flatten() {
            assert!(seen.insert(a), "column {a} used twice");
        }
    }
}

//! Fluent, validating construction of the assembled [`System`].
//!
//! [`Cluster::build`]/[`System::new`] take positional arguments and panic
//! on out-of-range configuration. [`SystemBuilder`] names every knob,
//! validates through [`Cluster::try_build`], and returns a typed
//! [`SheriffError`] instead of panicking — so binaries and experiments
//! can surface configuration mistakes as errors.
//!
//! ```
//! use dcn_topology::fattree::{self, FatTreeConfig};
//! use sheriff_core::SystemBuilder;
//!
//! let dcn = fattree::build(&FatTreeConfig::paper(4));
//! let system = SystemBuilder::new(dcn).seed(7).build().unwrap();
//! assert_eq!(system.time(), 0);
//! ```

use crate::fabric::FabricConfig;
use crate::runtime::FabricRuntime;
use crate::system::System;
use dcn_sim::engine::{Cluster, ClusterConfig};
use dcn_sim::flows::{Flow, FlowNetwork};
use dcn_sim::{ChannelFaults, SheriffError, SimConfig};
use dcn_topology::{Dcn, RackId};
use sheriff_obs::EventSink;
use sheriff_transfer::{RouteStrategy, TransferConfig};

/// Builder for the assembled [`System`]: topology in, validated system
/// out. Every setter has a sensible default (paper parameters, no flows,
/// no observation).
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    dcn: Dcn,
    cluster: ClusterConfig,
    sim: SimConfig,
    flows: Vec<Flow>,
    heartbeat_every: Option<u64>,
    liveness_deadline: Option<u64>,
    beacon_intervals: Vec<(RackId, u64)>,
    alert_checks: Vec<(RackId, u64)>,
    transfer: Option<TransferConfig>,
}

impl SystemBuilder {
    /// Start from a built topology (Fat-Tree, BCube, DCell, ...), with
    /// [`ClusterConfig::default`] population and [`SimConfig::paper`]
    /// parameters.
    pub fn new(dcn: Dcn) -> Self {
        Self {
            dcn,
            cluster: ClusterConfig::default(),
            sim: SimConfig::paper(),
            flows: Vec::new(),
            heartbeat_every: None,
            liveness_deadline: None,
            beacon_intervals: Vec::new(),
            alert_checks: Vec::new(),
            transfer: None,
        }
    }

    /// Replace the whole cluster-population config.
    pub fn cluster_config(mut self, cfg: ClusterConfig) -> Self {
        self.cluster = cfg;
        self
    }

    /// Replace the whole simulation config.
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim = cfg;
        self
    }

    /// Mean VMs per host for the initial placement.
    pub fn vms_per_host(mut self, v: f64) -> Self {
        self.cluster.vms_per_host = v;
        self
    }

    /// Placement skew: higher values concentrate VMs on fewer hosts.
    pub fn skew(mut self, skew: f64) -> Self {
        self.cluster.skew = skew;
        self
    }

    /// Seed for the cluster-population RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cluster.seed = seed;
        self
    }

    /// Length of the synthetic per-VM workload traces (0 disables
    /// workload-driven host alerts).
    pub fn workload_len(mut self, len: usize) -> Self {
        self.cluster.workload_len = len;
        self
    }

    /// Fault model for the shim control channel (adopted by
    /// [`fabric_runtime`](Self::fabric_runtime) and by
    /// [`FabricConfig::for_channel`](crate::FabricConfig::for_channel)).
    pub fn channel_faults(mut self, faults: ChannelFaults) -> Self {
        self.sim.channel = faults;
        self
    }

    /// Global liveness-beacon interval for the fabric runtime, in virtual
    /// ticks (the event-scheduled replacement for the old
    /// `heartbeat_period` queue knob).
    pub fn heartbeat_every(mut self, ticks: u64) -> Self {
        self.heartbeat_every = Some(ticks);
        self
    }

    /// Silence (in virtual ticks) after which the fabric runtime's
    /// liveness view presumes a rack dead.
    pub fn liveness_deadline(mut self, ticks: u64) -> Self {
        self.liveness_deadline = Some(ticks);
        self
    }

    /// Beacon `rack` every `every` virtual ticks instead of the global
    /// heartbeat interval — a per-rack event cadence for racks that need
    /// tighter failure detection.
    pub fn beacon_interval(mut self, rack: RackId, every: u64) -> Self {
        self.beacon_intervals.retain(|(r, _)| *r != rack);
        self.beacon_intervals.push((rack, every));
        self
    }

    /// Rescan `rack` for fresh pre-alerts every `every` virtual ticks
    /// within each fabric round (see
    /// [`FabricConfig::with_alert_check`](crate::FabricConfig::with_alert_check)).
    pub fn alert_check(mut self, rack: RackId, every: u64) -> Self {
        self.alert_checks.retain(|(r, _)| *r != rack);
        self.alert_checks.push((rack, every));
        self
    }

    /// Lazily-initialized transfer model, shared by the migration
    /// bandwidth knobs below.
    fn transfer_mut(&mut self) -> &mut TransferConfig {
        self.transfer.get_or_insert_with(TransferConfig::default)
    }

    /// Enable the migration transfer model with an explicit config
    /// (overrides any knob set earlier).
    pub fn transfer_config(mut self, cfg: TransferConfig) -> Self {
        self.transfer = Some(cfg);
        self
    }

    /// Enable the transfer model and set the per-link migration
    /// bandwidth (capacity units per virtual tick shared max-min among
    /// concurrent pre-copies).
    pub fn migration_bandwidth(mut self, per_link: f64) -> Self {
        self.transfer_mut().link_bandwidth = per_link;
        self
    }

    /// Enable the transfer model and cap concurrent pre-copies
    /// fabric-wide; excess admissions queue FIFO (0 = unlimited).
    pub fn max_concurrent_transfers(mut self, cap: usize) -> Self {
        self.transfer_mut().max_concurrent = cap;
        self
    }

    /// Enable the transfer model and pick how pre-copies are routed
    /// across the core under QCN congestion feedback.
    pub fn transfer_route_strategy(mut self, strategy: RouteStrategy) -> Self {
        self.transfer_mut().route_strategy = strategy;
        self
    }

    /// A [`FabricRuntime`] matching this builder's channel faults and
    /// event intervals: the channel-aware replacement for constructing a
    /// `FabricConfig` by hand and writing its deprecated queue knobs.
    pub fn fabric_runtime(&self, seed: u64) -> FabricRuntime {
        let mut cfg = FabricConfig::for_channel(self.sim.channel.clone(), seed);
        if let Some(h) = self.heartbeat_every {
            cfg = cfg.with_heartbeat_every(h);
        }
        if let Some(d) = self.liveness_deadline {
            cfg = cfg.with_liveness_deadline(d);
        }
        for &(rack, every) in &self.beacon_intervals {
            cfg = cfg.with_beacon_interval(rack, every);
        }
        for &(rack, every) in &self.alert_checks {
            cfg = cfg.with_alert_check(rack, every);
        }
        if let Some(tc) = &self.transfer {
            cfg = cfg.with_transfer(tc.clone());
        }
        FabricRuntime::with_config(cfg)
    }

    /// Initial flows between VMs; routed at build time. Without flows the
    /// ToR and QCN alert sources stay silent.
    pub fn flows(mut self, flows: Vec<Flow>) -> Self {
        self.flows = flows;
        self
    }

    /// Validate and assemble an unobserved `System<NullSink>`.
    pub fn build(self) -> Result<System, SheriffError> {
        self.build_with_sink(sheriff_obs::NullSink)
    }

    /// Validate and assemble a `System<S>` observed by `sink`.
    pub fn build_with_sink<S: EventSink>(self, sink: S) -> Result<System<S>, SheriffError> {
        let cluster = Cluster::try_build(self.dcn, &self.cluster, self.sim)?;
        let flows = FlowNetwork::route(&cluster.dcn, &cluster.placement, self.flows);
        Ok(System::with_sink(cluster, flows, sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::HoltPredictor;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use sheriff_obs::RingRecorder;

    #[test]
    fn builder_defaults_produce_a_working_system() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut sys = SystemBuilder::new(dcn)
            .vms_per_host(2.0)
            .skew(2.0)
            .seed(7)
            .workload_len(100)
            .build()
            .expect("valid defaults");
        let reports = sys.run(&HoltPredictor::default(), 5);
        assert_eq!(reports.len(), 5);
        assert_eq!(sys.time(), 5);
    }

    #[test]
    fn builder_surfaces_invalid_config_as_typed_errors() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let Err(err) = SystemBuilder::new(dcn.clone()).vms_per_host(-1.0).build() else {
            panic!("negative vms_per_host must be rejected");
        };
        assert!(matches!(err, SheriffError::InvalidClusterConfig { .. }));

        let bad_sim = SimConfig {
            alpha: 7.0,
            ..SimConfig::paper()
        };
        let Err(err) = SystemBuilder::new(dcn).sim_config(bad_sim).build() else {
            panic!("alpha outside [0, 1] must be rejected");
        };
        assert!(matches!(err, SheriffError::InvalidProbability { .. }));
    }

    #[test]
    fn fabric_runtime_carries_channel_and_event_intervals() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let rack = dcn_topology::RackId::from_index(0);
        let rt = SystemBuilder::new(dcn)
            .channel_faults(ChannelFaults::lossy(0.05))
            .heartbeat_every(4)
            .liveness_deadline(16)
            .beacon_interval(rack, 2)
            .alert_check(rack, 3)
            .fabric_runtime(11);
        assert_eq!(rt.cfg.seed, 11);
        assert!(!rt.cfg.faults.is_reliable());
        assert_eq!(rt.cfg.heartbeat_every(), 4);
        assert_eq!(rt.cfg.liveness_deadline, 16);
        assert_eq!(rt.cfg.beacon_every(rack), 2);
        assert_eq!(
            rt.cfg.beacon_every(dcn_topology::RackId::from_index(1)),
            4,
            "unlisted racks stay on the global interval"
        );
        assert_eq!(rt.cfg.alert_check_every(rack), 3);
        assert!(rt.cfg.transfer.is_none(), "transfer model defaults off");
    }

    #[test]
    fn transfer_knobs_compose_into_the_fabric_config() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let rt = SystemBuilder::new(dcn)
            .migration_bandwidth(2.0)
            .max_concurrent_transfers(6)
            .transfer_route_strategy(sheriff_transfer::RouteStrategy::LeastLoaded)
            .fabric_runtime(5);
        let tc = rt.cfg.transfer.as_ref().expect("knobs enable the model");
        assert_eq!(tc.link_bandwidth, 2.0);
        assert_eq!(tc.max_concurrent, 6);
        assert_eq!(
            tc.route_strategy,
            sheriff_transfer::RouteStrategy::LeastLoaded
        );
        let untouched = tc.clone();
        assert_eq!(
            untouched.k_paths,
            sheriff_transfer::TransferConfig::default().k_paths,
            "knobs leave the other fields at their defaults"
        );
    }

    #[test]
    fn build_with_sink_observes_round_boundaries() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut sys = SystemBuilder::new(dcn)
            .seed(9)
            .workload_len(100)
            .build_with_sink(RingRecorder::new(1024))
            .expect("valid config");
        sys.run(&HoltPredictor::default(), 3);
        let rec = sys.into_sink();
        assert_eq!(rec.count_kind("round_start"), 3);
        assert_eq!(rec.count_kind("round_end"), 3);
        assert!(rec.timing_stat("system.step").is_some());
    }
}

//! Fluent, validating construction of the assembled [`System`].
//!
//! [`Cluster::build`]/[`System::new`] take positional arguments and panic
//! on out-of-range configuration. [`SystemBuilder`] names every knob,
//! validates through [`Cluster::try_build`], and returns a typed
//! [`SheriffError`] instead of panicking — so binaries and experiments
//! can surface configuration mistakes as errors.
//!
//! ```
//! use dcn_topology::fattree::{self, FatTreeConfig};
//! use sheriff_core::SystemBuilder;
//!
//! let dcn = fattree::build(&FatTreeConfig::paper(4));
//! let system = SystemBuilder::new(dcn).seed(7).build().unwrap();
//! assert_eq!(system.time(), 0);
//! ```

use crate::system::System;
use dcn_sim::engine::{Cluster, ClusterConfig};
use dcn_sim::flows::{Flow, FlowNetwork};
use dcn_sim::{ChannelFaults, SheriffError, SimConfig};
use dcn_topology::Dcn;
use sheriff_obs::EventSink;

/// Builder for the assembled [`System`]: topology in, validated system
/// out. Every setter has a sensible default (paper parameters, no flows,
/// no observation).
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    dcn: Dcn,
    cluster: ClusterConfig,
    sim: SimConfig,
    flows: Vec<Flow>,
}

impl SystemBuilder {
    /// Start from a built topology (Fat-Tree, BCube, DCell, ...), with
    /// [`ClusterConfig::default`] population and [`SimConfig::paper`]
    /// parameters.
    pub fn new(dcn: Dcn) -> Self {
        Self {
            dcn,
            cluster: ClusterConfig::default(),
            sim: SimConfig::paper(),
            flows: Vec::new(),
        }
    }

    /// Replace the whole cluster-population config.
    pub fn cluster_config(mut self, cfg: ClusterConfig) -> Self {
        self.cluster = cfg;
        self
    }

    /// Replace the whole simulation config.
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim = cfg;
        self
    }

    /// Mean VMs per host for the initial placement.
    pub fn vms_per_host(mut self, v: f64) -> Self {
        self.cluster.vms_per_host = v;
        self
    }

    /// Placement skew: higher values concentrate VMs on fewer hosts.
    pub fn skew(mut self, skew: f64) -> Self {
        self.cluster.skew = skew;
        self
    }

    /// Seed for the cluster-population RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cluster.seed = seed;
        self
    }

    /// Length of the synthetic per-VM workload traces (0 disables
    /// workload-driven host alerts).
    pub fn workload_len(mut self, len: usize) -> Self {
        self.cluster.workload_len = len;
        self
    }

    /// Fault model for the shim control channel (used by the fabric
    /// runtime via [`FabricConfig::from_sim`](crate::FabricConfig::from_sim)).
    pub fn channel_faults(mut self, faults: ChannelFaults) -> Self {
        self.sim.channel = faults;
        self
    }

    /// Initial flows between VMs; routed at build time. Without flows the
    /// ToR and QCN alert sources stay silent.
    pub fn flows(mut self, flows: Vec<Flow>) -> Self {
        self.flows = flows;
        self
    }

    /// Validate and assemble an unobserved `System<NullSink>`.
    pub fn build(self) -> Result<System, SheriffError> {
        self.build_with_sink(sheriff_obs::NullSink)
    }

    /// Validate and assemble a `System<S>` observed by `sink`.
    pub fn build_with_sink<S: EventSink>(self, sink: S) -> Result<System<S>, SheriffError> {
        let cluster = Cluster::try_build(self.dcn, &self.cluster, self.sim)?;
        let flows = FlowNetwork::route(&cluster.dcn, &cluster.placement, self.flows);
        Ok(System::with_sink(cluster, flows, sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::engine::HoltPredictor;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use sheriff_obs::RingRecorder;

    #[test]
    fn builder_defaults_produce_a_working_system() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut sys = SystemBuilder::new(dcn)
            .vms_per_host(2.0)
            .skew(2.0)
            .seed(7)
            .workload_len(100)
            .build()
            .expect("valid defaults");
        let reports = sys.run(&HoltPredictor::default(), 5);
        assert_eq!(reports.len(), 5);
        assert_eq!(sys.time(), 5);
    }

    #[test]
    fn builder_surfaces_invalid_config_as_typed_errors() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let Err(err) = SystemBuilder::new(dcn.clone()).vms_per_host(-1.0).build() else {
            panic!("negative vms_per_host must be rejected");
        };
        assert!(matches!(err, SheriffError::InvalidClusterConfig { .. }));

        let bad_sim = SimConfig {
            alpha: 7.0,
            ..SimConfig::paper()
        };
        let Err(err) = SystemBuilder::new(dcn).sim_config(bad_sim).build() else {
            panic!("alpha outside [0, 1] must be rejected");
        };
        assert!(matches!(err, SheriffError::InvalidProbability { .. }));
    }

    #[test]
    fn build_with_sink_observes_round_boundaries() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut sys = SystemBuilder::new(dcn)
            .seed(9)
            .workload_len(100)
            .build_with_sink(RingRecorder::new(1024))
            .expect("valid config");
        sys.run(&HoltPredictor::default(), 3);
        let rec = sys.into_sink();
        assert_eq!(rec.count_kind("round_start"), 3);
        assert_eq!(rec.count_kind("round_end"), 3);
        assert!(rec.timing_stat("system.step").is_some());
    }
}

//! Alg. 4 — the REQUEST action at the destination shim.
//!
//! A migration only proceeds once the destination's delegation node
//! accepts: it checks that the target host still has capacity (Eqn. 8) —
//! and, per constraint (7), that no dependent VM already lives there —
//! then commits the reservation and replies ACK; otherwise it replies
//! REJECT and the source shim must recalculate.

use dcn_topology::{DependencyGraph, HostId, Placement, PlacementError, VmId};
use serde::{Deserialize, Serialize};

/// The destination shim's reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// Accepted; the VM has been moved and capacity committed.
    Ack,
    /// Rejected: the host no longer has enough free capacity.
    RejectCapacity,
    /// Rejected: a dependent VM occupies the host (χ constraint, Eqn. 7).
    RejectConflict,
    /// Rejected: the VM is already on that host (no-op request).
    RejectNoop,
}

impl RequestOutcome {
    /// Whether the request succeeded.
    pub fn is_ack(self) -> bool {
        self == RequestOutcome::Ack
    }
}

/// Process one migration REQUEST against the authoritative placement.
/// FCFS ordering is the caller's responsibility (sequential runtime:
/// iteration order; distributed runtime: per-rack agent channel order).
pub fn request_migration(
    placement: &mut Placement,
    deps: &DependencyGraph,
    vm: VmId,
    dest: HostId,
) -> RequestOutcome {
    if deps.conflicts_on_host(vm, dest, placement) {
        return RequestOutcome::RejectConflict;
    }
    match placement.migrate(vm, dest) {
        Ok(()) => RequestOutcome::Ack,
        Err(PlacementError::CapacityExceeded { .. }) => RequestOutcome::RejectCapacity,
        Err(PlacementError::AlreadyPlaced { .. }) => RequestOutcome::RejectNoop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::{Inventory, VmSpec};

    fn setup() -> (Placement, DependencyGraph) {
        let mut inv = Inventory::new();
        inv.add_rack(2, 10.0, 100.0); // hosts 0, 1
        let mut p = Placement::new(&inv);
        for _ in 0..2 {
            let s = VmSpec {
                id: p.next_vm_id(),
                capacity: 6.0,
                value: 1.0,
                delay_sensitive: false,
            };
            p.add_vm(s, HostId(0)).ok();
        }
        // only VM 0 fits on host 0 (6+6 > 10): second add failed
        let s = VmSpec {
            id: p.next_vm_id(),
            capacity: 6.0,
            value: 1.0,
            delay_sensitive: false,
        };
        p.add_vm(s, HostId(1)).unwrap();
        (p, DependencyGraph::new(3))
    }

    #[test]
    fn ack_commits_the_move() {
        let (mut p, deps) = setup();
        // VM 0 is on host 0, VM 1 on host 1 (ids 0 and 1; the failed add
        // never allocated an id, so ids are dense)
        let vm = VmId(0);
        let out = request_migration(&mut p, &deps, vm, HostId(1));
        // host 1 has 10-6=4 free < 6 -> capacity reject
        assert_eq!(out, RequestOutcome::RejectCapacity);
        assert_eq!(p.host_of(vm), HostId(0));
    }

    #[test]
    fn conflict_rejected_before_capacity() {
        let (mut p, mut deps) = setup();
        deps.add_dependency(VmId(0), VmId(1));
        let out = request_migration(&mut p, &deps, VmId(0), HostId(1));
        assert_eq!(out, RequestOutcome::RejectConflict);
    }

    #[test]
    fn noop_request_rejected() {
        let (mut p, deps) = setup();
        let out = request_migration(&mut p, &deps, VmId(0), HostId(0));
        assert_eq!(out, RequestOutcome::RejectNoop);
    }

    #[test]
    fn successful_request_is_fcfs_first_wins() {
        let mut inv = Inventory::new();
        inv.add_rack(3, 10.0, 100.0);
        let mut p = Placement::new(&inv);
        for h in [0usize, 1] {
            let s = VmSpec {
                id: p.next_vm_id(),
                capacity: 6.0,
                value: 1.0,
                delay_sensitive: false,
            };
            p.add_vm(s, HostId::from_index(h)).unwrap();
        }
        let deps = DependencyGraph::new(2);
        // both VMs request host 2; only the first fits
        assert!(request_migration(&mut p, &deps, VmId(0), HostId(2)).is_ack());
        assert_eq!(
            request_migration(&mut p, &deps, VmId(1), HostId(2)),
            RequestOutcome::RejectCapacity
        );
        assert_eq!(p.host_of(VmId(0)), HostId(2));
        assert_eq!(p.host_of(VmId(1)), HostId(1));
    }
}

//! Partition-tolerant regional failover: an adaptive failure detector
//! plus epoch/term bookkeeping for shim takeover and fencing.
//!
//! The detector is phi-accrual in spirit but fully deterministic: it
//! watches heartbeat *emission* times in virtual time, keeps a short
//! window of inter-emission intervals per shim, and classifies silence
//! against integer multiples of the observed mean interval. Observing
//! emission (rather than reception) is a deliberate simulator-level
//! choice: a partitioned-but-alive shim keeps emitting, so partitions
//! never masquerade as crashes and takeover only fires for shims that
//! really stopped — which is what structurally prevents two managers for
//! one rack across a partition cut.
//!
//! Epochs are per-rack monotonic terms. Declaring a shim Dead and
//! reassigning its rack bumps the rack's epoch; every protocol message
//! carries its sender's view of its own rack's epoch, and receivers
//! fence 2PC messages whose epoch lags the authoritative one. A fenced
//! zombie learns the current epoch from the `StaleEpoch` reject and
//! adopts it — the lazy re-integration step of the
//! Alive→Suspect→Dead→Fenced→Reintegrated state machine (DESIGN.md §5d).

use dcn_topology::RackId;
use std::collections::BTreeMap;

/// How many inter-emission intervals the detector remembers per shim.
const INTERVAL_WINDOW: usize = 8;

/// The detector's verdict on one shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShimHealth {
    /// Heartbeats arriving within the adaptive deadline.
    Alive,
    /// Silence beyond twice the mean interval — takeover not yet
    /// warranted, but the shim's region should brace.
    Suspect,
    /// Silence beyond the dead threshold; the shim's racks are eligible
    /// for takeover.
    Dead,
}

/// Deterministic phi-accrual-style failure detector over virtual-time
/// heartbeat emissions.
///
/// All state lives in `BTreeMap`s so iteration (and therefore event
/// emission order) is rack order, never hash order.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    last_emit: BTreeMap<RackId, u64>,
    intervals: BTreeMap<RackId, Vec<u64>>,
    health: BTreeMap<RackId, ShimHealth>,
    /// Assumed mean interval before any samples arrive (the configured
    /// heartbeat period).
    pub default_interval: u64,
    /// Silence is never fatal below this floor, however fast the shim
    /// was heartbeating (mirrors the liveness deadline).
    pub dead_floor: u64,
}

impl FailureDetector {
    /// Detector expecting beacons roughly every `default_interval` ticks
    /// and never declaring death before `dead_floor` ticks of silence.
    pub fn new(default_interval: u64, dead_floor: u64) -> Self {
        Self {
            last_emit: BTreeMap::new(),
            intervals: BTreeMap::new(),
            health: BTreeMap::new(),
            default_interval: default_interval.max(1),
            dead_floor: dead_floor.max(1),
        }
    }

    /// Start (or refresh) the silence clock for a shim that is expected
    /// to beacon from `t` on, without counting an emission. Used at round
    /// start so a shim that is down from tick 0 still accrues silence.
    pub fn track(&mut self, rack: RackId, t: u64) {
        self.last_emit.entry(rack).or_insert(t);
        self.health.entry(rack).or_insert(ShimHealth::Alive);
    }

    /// Record a heartbeat/hello emission from `rack` at `t`. Returns the
    /// shim's previous health so the caller can notice a Dead shim
    /// returning (the Reintegrated transition).
    pub fn observe_emission(&mut self, rack: RackId, t: u64) -> ShimHealth {
        if let Some(&last) = self.last_emit.get(&rack) {
            if t > last {
                let window = self.intervals.entry(rack).or_default();
                window.push(t - last);
                if window.len() > INTERVAL_WINDOW {
                    window.remove(0);
                }
            }
        }
        self.last_emit.insert(rack, t);
        self.health
            .insert(rack, ShimHealth::Alive)
            .unwrap_or(ShimHealth::Alive)
    }

    /// Mean observed inter-emission interval for `rack`, falling back to
    /// the default before any samples exist. Integer math, never zero.
    pub fn mean_interval(&self, rack: RackId) -> u64 {
        match self.intervals.get(&rack) {
            Some(w) if !w.is_empty() => (w.iter().sum::<u64>() / w.len() as u64).max(1),
            _ => self.default_interval,
        }
    }

    /// Classify `rack` at time `now` without mutating any state.
    pub fn classify(&self, rack: RackId, now: u64) -> ShimHealth {
        let Some(&last) = self.last_emit.get(&rack) else {
            return ShimHealth::Alive;
        };
        let silence = now.saturating_sub(last);
        let mean = self.mean_interval(rack);
        if silence > self.dead_floor.max(3 * mean) {
            ShimHealth::Dead
        } else if silence > 2 * mean {
            ShimHealth::Suspect
        } else {
            ShimHealth::Alive
        }
    }

    /// Advance the detector to `now`: every tracked shim is
    /// re-classified, and the racks whose health *changed* are returned
    /// in rack order as `(rack, old, new)`.
    pub fn tick(&mut self, now: u64) -> Vec<(RackId, ShimHealth, ShimHealth)> {
        let mut changed = Vec::new();
        let racks: Vec<RackId> = self.last_emit.keys().copied().collect();
        for rack in racks {
            let new = self.classify(rack, now);
            let old = self.health.get(&rack).copied().unwrap_or(ShimHealth::Alive);
            if new != old {
                self.health.insert(rack, new);
                changed.push((rack, old, new));
            }
        }
        changed
    }

    /// The last classification recorded for `rack`.
    pub fn health(&self, rack: RackId) -> ShimHealth {
        self.health.get(&rack).copied().unwrap_or(ShimHealth::Alive)
    }

    /// The earliest tick strictly after `now` at which some tracked
    /// shim's classification differs from its recorded health, or `None`
    /// when no amount of further silence changes any verdict.
    ///
    /// Silence-driven transitions happen exactly at `last + 2·mean + 1`
    /// (Alive→Suspect) and `last + max(dead_floor, 3·mean) + 1`
    /// (→Dead) — [`classify`](Self::classify) uses strict inequalities —
    /// and nothing else moves between emissions, so an event loop that
    /// wakes the detector at this tick observes the same transitions as
    /// one that ticks it every virtual tick.
    pub fn next_transition_after(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        for (&rack, &last) in &self.last_emit {
            let mean = self.mean_interval(rack);
            let cur = self.health(rack);
            let candidates = [
                last.saturating_add(2 * mean + 1),
                last.saturating_add(self.dead_floor.max(3 * mean) + 1),
            ];
            for c in candidates {
                let at = c.max(now + 1);
                if self.classify(rack, at) != cur {
                    next = Some(next.map_or(at, |n: u64| n.min(at)));
                    break;
                }
            }
        }
        next
    }
}

/// Persistent cross-round failover state of the fabric: the failure
/// detector, the authoritative per-rack epochs, each shim's view of its
/// own epoch, and the current manager of every rack.
///
/// Epochs only ever move forward ([`RegionFailover::take_over`] is the
/// sole writer and it increments): fault-injector restore paths cannot
/// resurrect a shim into an old epoch, they merely let the shim start
/// talking again — and its first 2PC message is fenced until it adopts
/// the current epoch.
#[derive(Debug, Clone)]
pub struct RegionFailover {
    /// The heartbeat-emission failure detector.
    pub detector: FailureDetector,
    epochs: BTreeMap<RackId, u64>,
    views: BTreeMap<RackId, u64>,
    managers: BTreeMap<RackId, RackId>,
    /// Accumulated virtual time across rounds (each round's ticks are
    /// added at round end), so heartbeat silence spans round boundaries.
    pub clock: u64,
}

impl RegionFailover {
    /// Fresh failover state with the given detector parameters.
    pub fn new(default_interval: u64, dead_floor: u64) -> Self {
        Self {
            detector: FailureDetector::new(default_interval, dead_floor),
            epochs: BTreeMap::new(),
            views: BTreeMap::new(),
            managers: BTreeMap::new(),
            clock: 0,
        }
    }

    /// The authoritative epoch of `rack` (0 until its first takeover).
    pub fn epoch_of(&self, rack: RackId) -> u64 {
        self.epochs.get(&rack).copied().unwrap_or(0)
    }

    /// The full authoritative epoch table (racks never taken over are
    /// absent and implicitly at epoch 0), in the shape journal recovery
    /// wants for its fenced sweep.
    pub fn epochs(&self) -> &BTreeMap<RackId, u64> {
        &self.epochs
    }

    /// `rack`'s shim's view of its own epoch — what its messages carry.
    pub fn view_of(&self, rack: RackId) -> u64 {
        self.views.get(&rack).copied().unwrap_or(0)
    }

    /// The rack currently managing `rack`'s region (itself by default).
    pub fn manager_of(&self, rack: RackId) -> RackId {
        self.managers.get(&rack).copied().unwrap_or(rack)
    }

    /// Whether `rack` is managed by someone else right now.
    pub fn taken_over(&self, rack: RackId) -> bool {
        self.manager_of(rack) != rack
    }

    /// Hand `rack`'s region to `by`. The epoch bumps only on an actual
    /// manager change (repeating the same takeover is idempotent), and
    /// the new manager's view is already current — only the deposed
    /// shim's view goes stale. Returns the rack's epoch after the call.
    pub fn take_over(&mut self, rack: RackId, by: RackId) -> u64 {
        if self.manager_of(rack) != by {
            self.managers.insert(rack, by);
            let e = self.epochs.entry(rack).or_insert(0);
            *e += 1;
        }
        self.epoch_of(rack)
    }

    /// A Dead shim came back: management reverts to it, but its view
    /// stays stale — it gets fenced once, adopts, and only then rejoins
    /// the 2PC plane at the current epoch.
    pub fn reinstate(&mut self, rack: RackId) {
        self.managers.insert(rack, rack);
    }

    /// `rack`'s shim learned (from a `StaleEpoch` reject) that its rack
    /// is at `epoch`; views only move forward.
    pub fn adopt(&mut self, rack: RackId, epoch: u64) {
        let v = self.views.entry(rack).or_insert(0);
        if epoch > *v {
            *v = epoch;
        }
    }

    /// Fence check for a 2PC message from `from` carrying `msg_epoch`:
    /// `Some(current)` when the message must be rejected as stale.
    pub fn fence(&self, from: RackId, msg_epoch: u64) -> Option<u64> {
        let current = self.epoch_of(from);
        (msg_epoch < current).then_some(current)
    }
}

impl Default for RegionFailover {
    fn default() -> Self {
        // matches FabricConfig's heartbeat_period / liveness_deadline
        Self::new(8, 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_walks_alive_suspect_dead() {
        let mut d = FailureDetector::new(8, 24);
        d.observe_emission(RackId(0), 0);
        d.observe_emission(RackId(0), 8);
        d.observe_emission(RackId(0), 16);
        assert!(d.tick(17).is_empty(), "in-deadline silence is quiet");
        assert_eq!(d.classify(RackId(0), 32), ShimHealth::Alive, "16 = 2m");
        let changed = d.tick(33);
        assert_eq!(
            changed,
            vec![(RackId(0), ShimHealth::Alive, ShimHealth::Suspect)]
        );
        // dead threshold is max(floor 24, 3m = 24): strictly past 40
        assert_eq!(d.classify(RackId(0), 40), ShimHealth::Suspect);
        let changed = d.tick(41);
        assert_eq!(
            changed,
            vec![(RackId(0), ShimHealth::Suspect, ShimHealth::Dead)]
        );
        assert_eq!(d.health(RackId(0)), ShimHealth::Dead);
        // re-emission reintegrates, and the caller sees the old health
        assert_eq!(d.observe_emission(RackId(0), 50), ShimHealth::Dead);
        assert_eq!(d.health(RackId(0)), ShimHealth::Alive);
    }

    #[test]
    fn detector_adapts_to_slow_heartbeaters() {
        let mut d = FailureDetector::new(8, 24);
        for t in [0u64, 20, 40, 60] {
            d.observe_emission(RackId(1), t);
        }
        // mean interval 20: a fast detector would have killed it at 25
        assert_eq!(d.classify(RackId(1), 99), ShimHealth::Alive);
        assert_eq!(d.classify(RackId(1), 101), ShimHealth::Suspect);
        assert_eq!(d.classify(RackId(1), 121), ShimHealth::Dead);
    }

    #[test]
    fn expected_but_never_heard_shim_accrues_silence() {
        let mut d = FailureDetector::new(8, 24);
        d.track(RackId(2), 0);
        assert_eq!(d.classify(RackId(2), 10), ShimHealth::Alive);
        assert_eq!(d.classify(RackId(2), 25), ShimHealth::Dead);
        // track() never resets an existing clock
        d.track(RackId(2), 100);
        assert_eq!(d.classify(RackId(2), 25), ShimHealth::Dead);
    }

    #[test]
    fn next_transition_predicts_tick_exactly() {
        let mut d = FailureDetector::new(8, 24);
        d.observe_emission(RackId(0), 0);
        d.observe_emission(RackId(0), 8);
        d.observe_emission(RackId(0), 16);
        // mean 8 → Suspect strictly past 16 + 16 = 32, i.e. at 33
        assert_eq!(d.next_transition_after(16), Some(33));
        // the predicted tick is exactly when tick() first reports change
        assert!(d.tick(32).is_empty());
        assert!(!d.tick(33).is_empty());
        // next up: Dead strictly past 16 + max(24, 24) = 40, i.e. at 41
        assert_eq!(d.next_transition_after(33), Some(41));
        assert!(d.tick(40).is_empty());
        assert!(!d.tick(41).is_empty());
        // a Dead shim has no further silence-driven transition
        assert_eq!(d.next_transition_after(41), None);
    }

    #[test]
    fn epochs_are_monotonic_and_bump_only_on_manager_change() {
        let mut f = RegionFailover::default();
        assert_eq!(f.epoch_of(RackId(0)), 0);
        assert!(!f.taken_over(RackId(0)));
        assert_eq!(f.take_over(RackId(0), RackId(1)), 1);
        assert_eq!(f.manager_of(RackId(0)), RackId(1));
        // repeating the same takeover does not bump again
        assert_eq!(f.take_over(RackId(0), RackId(1)), 1);
        // a different successor does
        assert_eq!(f.take_over(RackId(0), RackId(2)), 2);
        // reinstatement reverts management without touching the epoch
        f.reinstate(RackId(0));
        assert_eq!(f.manager_of(RackId(0)), RackId(0));
        assert_eq!(f.epoch_of(RackId(0)), 2);
    }

    #[test]
    fn fencing_and_adoption_round_trip() {
        let mut f = RegionFailover::default();
        f.take_over(RackId(3), RackId(1));
        // the zombie's view is still 0: fenced
        assert_eq!(f.view_of(RackId(3)), 0);
        assert_eq!(f.fence(RackId(3), f.view_of(RackId(3))), Some(1));
        // it adopts the epoch from the reject and passes the fence
        f.adopt(RackId(3), 1);
        assert_eq!(f.fence(RackId(3), f.view_of(RackId(3))), None);
        // adoption never regresses
        f.adopt(RackId(3), 0);
        assert_eq!(f.view_of(RackId(3)), 1);
        // other racks were never fenced
        assert_eq!(f.fence(RackId(1), 0), None);
    }
}

//! Alg. 5 — the Local Search k-median algorithm, and the VMMIGRATION →
//! k-median transformation of Sec. V-A.
//!
//! The transformation: after Floyd–Warshall collapses rack-to-rack routing
//! into a complete metric, `Cost(v_i, v_p) = C_r + f(v_i, v_p) + G(v_i, v_p)`
//! depends only on the endpoints, so choosing destination ToRs for the
//! alerting source ToRs is a k-median instance (clients = source ToRs `C`,
//! facilities = all ToRs `F`). The Arya et al. \[29\] local search with
//! `p`-swaps achieves ratio `3 + 2/p` (Sec. VI-C); an exact enumerator
//! validates the ratio empirically.

use dcn_sim::SheriffError;
use serde::{Deserialize, Serialize};
use sheriff_obs::{emit, Event, EventSink, NullSink};

/// A k-median instance: `cost[c][f]` is the connection cost of client `c`
/// to facility `f`; exactly `k` facilities may open.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMedianInstance {
    /// Client × facility connection costs.
    pub cost: Vec<Vec<f64>>,
    /// Number of facilities to open.
    pub k: usize,
}

impl KMedianInstance {
    /// Validated constructor. Panics on structural defects; see
    /// [`KMedianInstance::try_new`] for the fallible form.
    pub fn new(cost: Vec<Vec<f64>>, k: usize) -> Self {
        assert!(!cost.is_empty(), "need at least one client");
        let m = cost[0].len();
        assert!(
            cost.iter().all(|r| r.len() == m),
            "matrix must be rectangular"
        );
        assert!(k >= 1 && k <= m, "k must be in 1..=facilities");
        Self { cost, k }
    }

    /// Fallible [`KMedianInstance::new`]: returns a typed error instead
    /// of panicking on an empty or ragged matrix or `k` out of range.
    pub fn try_new(cost: Vec<Vec<f64>>, k: usize) -> Result<Self, SheriffError> {
        if cost.is_empty() {
            return Err(SheriffError::InvalidKMedian {
                reason: "need at least one client".into(),
            });
        }
        let m = cost[0].len();
        if !cost.iter().all(|r| r.len() == m) {
            return Err(SheriffError::InvalidKMedian {
                reason: "matrix must be rectangular".into(),
            });
        }
        if k < 1 || k > m {
            return Err(SheriffError::InvalidKMedian {
                reason: format!("k = {k} must be in 1..={m}"),
            });
        }
        Ok(Self { cost, k })
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.cost.len()
    }

    /// Number of facilities.
    pub fn facilities(&self) -> usize {
        self.cost[0].len()
    }

    /// Total cost of serving every client from its cheapest open facility.
    pub fn solution_cost(&self, open: &[usize]) -> f64 {
        debug_assert!(!open.is_empty());
        self.cost
            .iter()
            .map(|row| open.iter().map(|&f| row[f]).fold(f64::INFINITY, f64::min))
            .sum()
    }
}

/// Result of a k-median solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMedianSolution {
    /// The open facilities.
    pub open: Vec<usize>,
    /// Total connection cost.
    pub cost: f64,
    /// Local-search iterations performed (0 for exact).
    pub iterations: usize,
}

/// Greedy initialisation: repeatedly open the facility that most reduces
/// total cost (standard warm start for local search).
pub fn greedy_init(inst: &KMedianInstance) -> Vec<usize> {
    let m = inst.facilities();
    let mut open: Vec<usize> = Vec::with_capacity(inst.k);
    let mut best_dist = vec![f64::INFINITY; inst.clients()];
    for _ in 0..inst.k {
        let mut best_f = usize::MAX;
        let mut best_gain = f64::NEG_INFINITY;
        for f in 0..m {
            if open.contains(&f) {
                continue;
            }
            let gain: f64 = inst
                .cost
                .iter()
                .enumerate()
                .map(|(c, row)| (best_dist[c] - row[f]).max(0.0))
                .sum();
            if gain > best_gain {
                best_gain = gain;
                best_f = f;
            }
        }
        open.push(best_f);
        for (c, row) in inst.cost.iter().enumerate() {
            best_dist[c] = best_dist[c].min(row[best_f]);
        }
    }
    open.sort_unstable();
    open
}

/// Alg. 5: local search with swaps of up to `p` facilities.
///
/// Starting from a feasible solution, repeatedly applies the best
/// improving swap `(A ⊂ S, B ⊄ S, |A| = |B| = s ≤ p)` until no swap
/// improves the cost (or `max_iterations` is reached) — the Arya et al.
/// scheme whose local optima are within `3 + 2/p` of optimal. Swap sizes
/// whose candidate count `C(k, s)·C(m−k, s)` exceeds an internal budget
/// are skipped (the guarantee of the largest affordable `s` still holds).
pub fn local_search(inst: &KMedianInstance, p: usize, max_iterations: usize) -> KMedianSolution {
    local_search_from(inst, greedy_init(inst), p, max_iterations)
}

/// [`local_search`] from an explicit initial solution ("S ← an arbitrary
/// feasible solution", Alg. 5 line 1). Exposed so the ratio experiment
/// can probe local optima reachable from poor starting points.
pub fn local_search_from(
    inst: &KMedianInstance,
    initial: Vec<usize>,
    p: usize,
    max_iterations: usize,
) -> KMedianSolution {
    local_search_from_obs(inst, initial, p, max_iterations, &mut NullSink)
}

/// [`local_search_from`] with instrumentation: every accepted improving
/// p-swap is emitted as a `swap_accepted` event carrying the objective
/// value after the swap, so a trace shows the Alg. 5 descent curve.
pub fn local_search_from_obs<S: EventSink + ?Sized>(
    inst: &KMedianInstance,
    initial: Vec<usize>,
    p: usize,
    max_iterations: usize,
    sink: &mut S,
) -> KMedianSolution {
    assert!(p >= 1, "swap size must be at least 1");
    assert_eq!(
        initial.len(),
        inst.k,
        "initial solution must open k facilities"
    );
    let mut open = initial;
    let mut cost = inst.solution_cost(&open);
    let mut iterations = 0;

    loop {
        if iterations >= max_iterations {
            break;
        }
        iterations += 1;
        let improved = best_swap(inst, &mut open, &mut cost, p);
        if !improved {
            break;
        }
        emit(sink, || Event::SwapAccepted {
            iteration: iterations as u64,
            cost,
        });
        sink.counter("kmedian.swaps", 1);
    }
    open.sort_unstable();
    KMedianSolution {
        open,
        cost,
        iterations,
    }
}

/// Candidate-swap budget per swap size: above this many (A, B) pairs the
/// size is skipped to stay polynomial on large instances.
const SWAP_BUDGET: u64 = 2_000_000;

fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let mut out: u64 = 1;
    for i in 0..k.min(n - k) {
        out = out.saturating_mul((n - i) as u64) / (i as u64 + 1);
    }
    out
}

/// Enumerate every subset of `items` of size `s`, calling `f` with each.
fn for_each_combination(n: usize, s: usize, f: &mut impl FnMut(&[usize])) {
    let mut idx: Vec<usize> = (0..s).collect();
    if s == 0 || s > n {
        return;
    }
    loop {
        f(&idx);
        // advance lexicographically
        let mut i = s;
        while i > 0 {
            i -= 1;
            if idx[i] != i + n - s {
                idx[i] += 1;
                for j in (i + 1)..s {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
            if i == 0 {
                return;
            }
        }
    }
}

/// Try every swap of size `1..=p` (subject to the budget); apply the best
/// strictly-improving one. Returns whether an improvement was made.
fn best_swap(inst: &KMedianInstance, open: &mut Vec<usize>, cost: &mut f64, p: usize) -> bool {
    let m = inst.facilities();
    let k = open.len();
    let closed: Vec<usize> = (0..m).filter(|f| !open.contains(f)).collect();

    let mut best: Option<(Vec<usize>, f64)> = None;
    for s in 1..=p.min(k).min(closed.len()) {
        if binomial(k, s).saturating_mul(binomial(closed.len(), s)) > SWAP_BUDGET {
            continue;
        }
        for_each_combination(k, s, &mut |a_idx| {
            for_each_combination(closed.len(), s, &mut |b_idx| {
                let mut cand = open.clone();
                for (ai, bi) in a_idx.iter().zip(b_idx) {
                    cand[*ai] = closed[*bi];
                }
                let c = inst.solution_cost(&cand);
                if c < *cost - 1e-12 && best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                    best = Some((cand, c));
                }
            });
        });
    }
    if let Some((cand, c)) = best {
        *open = cand;
        *cost = c;
        true
    } else {
        false
    }
}

/// Exact optimum by enumerating every k-subset of facilities. Exponential;
/// intended for the ratio experiment's small instances (`C(m, k)` must be
/// modest).
pub fn exact_optimal(inst: &KMedianInstance) -> KMedianSolution {
    let m = inst.facilities();
    let mut subset: Vec<usize> = (0..inst.k).collect();
    let mut best_cost = inst.solution_cost(&subset);
    let mut best = subset.clone();
    // iterate k-combinations in lexicographic order
    loop {
        // advance
        let mut i = inst.k;
        loop {
            if i == 0 {
                let sol = KMedianSolution {
                    open: best,
                    cost: best_cost,
                    iterations: 0,
                };
                return sol;
            }
            i -= 1;
            if subset[i] != i + m - inst.k {
                break;
            }
        }
        if subset[i] == i + m - inst.k {
            let sol = KMedianSolution {
                open: best,
                cost: best_cost,
                iterations: 0,
            };
            return sol;
        }
        subset[i] += 1;
        for j in (i + 1)..inst.k {
            subset[j] = subset[j - 1] + 1;
        }
        let c = inst.solution_cost(&subset);
        if c < best_cost {
            best_cost = c;
            best = subset.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Metric instance from random points on a line (|x_c − x_f|).
    fn line_instance(
        rng: &mut StdRng,
        clients: usize,
        facilities: usize,
        k: usize,
    ) -> KMedianInstance {
        let cx: Vec<f64> = (0..clients).map(|_| rng.gen_range(0.0..100.0)).collect();
        let fx: Vec<f64> = (0..facilities).map(|_| rng.gen_range(0.0..100.0)).collect();
        let cost = cx
            .iter()
            .map(|&c| fx.iter().map(|&f| (c - f).abs()).collect())
            .collect();
        KMedianInstance::new(cost, k)
    }

    #[test]
    fn solution_cost_uses_cheapest_open_facility() {
        let inst = KMedianInstance::new(vec![vec![1.0, 5.0, 9.0], vec![7.0, 2.0, 9.0]], 2);
        assert_eq!(inst.solution_cost(&[0, 1]), 3.0);
        assert_eq!(inst.solution_cost(&[2, 1]), 7.0);
    }

    #[test]
    fn greedy_init_opens_k_distinct_facilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = line_instance(&mut rng, 20, 10, 4);
        let open = greedy_init(&inst);
        assert_eq!(open.len(), 4);
        let set: std::collections::HashSet<_> = open.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn local_search_matches_exact_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..15 {
            let inst = line_instance(&mut rng, 12, 8, 3);
            let ls = local_search(&inst, 2, 1000);
            let opt = exact_optimal(&inst);
            assert!(
                ls.cost <= opt.cost * 1.2 + 1e-9,
                "trial {trial}: LS {} vs OPT {}",
                ls.cost,
                opt.cost
            );
            assert!(ls.cost >= opt.cost - 1e-9, "LS beat the optimum?!");
        }
    }

    #[test]
    fn ratio_within_theoretical_bound() {
        // 3 + 2/p with p = 1 → 5; p = 2 → 4. Empirical ratios must respect it.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let inst = line_instance(&mut rng, 15, 9, 3);
            let opt = exact_optimal(&inst);
            for p in [1usize, 2] {
                let ls = local_search(&inst, p, 1000);
                let bound = 3.0 + 2.0 / p as f64;
                assert!(
                    ls.cost <= bound * opt.cost + 1e-9,
                    "p={p}: ratio {} exceeds {bound}",
                    ls.cost / opt.cost
                );
            }
        }
    }

    #[test]
    fn p2_never_worse_than_p1() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let inst = line_instance(&mut rng, 20, 12, 4);
            let c1 = local_search(&inst, 1, 1000).cost;
            let c2 = local_search(&inst, 2, 1000).cost;
            assert!(c2 <= c1 + 1e-9, "2-swap {c2} worse than 1-swap {c1}");
        }
    }

    #[test]
    fn k_equals_facilities_is_trivially_optimal() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = line_instance(&mut rng, 10, 5, 5);
        let ls = local_search(&inst, 1, 100);
        let opt = exact_optimal(&inst);
        assert!((ls.cost - opt.cost).abs() < 1e-9);
        assert_eq!(ls.open, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exact_enumerates_combinations_correctly() {
        // trivial instance where facility 2 is free for everyone
        let inst = KMedianInstance::new(vec![vec![5.0, 5.0, 0.0], vec![5.0, 5.0, 0.0]], 1);
        let opt = exact_optimal(&inst);
        assert_eq!(opt.open, vec![2]);
        assert_eq!(opt.cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn invalid_k_rejected() {
        KMedianInstance::new(vec![vec![1.0]], 2);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert!(KMedianInstance::try_new(vec![], 1).is_err());
        assert!(KMedianInstance::try_new(vec![vec![1.0], vec![1.0, 2.0]], 1).is_err());
        assert!(KMedianInstance::try_new(vec![vec![1.0]], 2).is_err());
        assert!(KMedianInstance::try_new(vec![vec![1.0, 2.0]], 2).is_ok());
    }

    #[test]
    fn instrumented_search_traces_the_descent() {
        use sheriff_obs::RingRecorder;
        let mut rng = StdRng::seed_from_u64(7);
        let inst = line_instance(&mut rng, 12, 8, 3);
        // a poor start guarantees at least one improving swap
        let start: Vec<usize> = (0..3).collect();
        let base = local_search_from(&inst, start.clone(), 2, 1000);
        let mut rec = RingRecorder::new(64);
        let traced = local_search_from_obs(&inst, start, 2, 1000, &mut rec);
        assert_eq!(traced.cost, base.cost, "instrumentation changed the result");
        let swaps: Vec<f64> = rec
            .events()
            .filter_map(|e| match e {
                Event::SwapAccepted { cost, .. } => Some(*cost),
                _ => None,
            })
            .collect();
        assert!(
            swaps.windows(2).all(|w| w[1] < w[0]),
            "descent not monotone"
        );
        assert_eq!(rec.counters().get("kmedian.swaps"), swaps.len() as u64);
        if let Some(&last) = swaps.last() {
            assert!((last - traced.cost).abs() < 1e-9);
        }
    }
}

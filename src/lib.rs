//! # sheriff-dcn
//!
//! Facade crate for the Sheriff reproduction (ICPP'15: *Sheriff: A
//! Regional Pre-Alert Management Scheme in Data Center Networks*).
//! Re-exports the four workspace crates:
//!
//! * [`topology`] — Fat-Tree/BCube builders, wired graph, shortest paths,
//!   placement, dependency graph;
//! * [`forecast`] — ARIMA, NARNET, dynamic model selection, synthetic
//!   traces;
//! * [`sim`] — workload profiles, alerts, migration cost model, QCN,
//!   flows, the cluster engine;
//! * [`sheriff`] — the management algorithms (PRIORITY, VMMIGRATION,
//!   REQUEST, k-median local search) and both runtimes.
//!
//! ```
//! use sheriff_dcn::prelude::*;
//!
//! let dcn = fattree::build(&FatTreeConfig::paper(4));
//! let cluster = Cluster::build(dcn, &ClusterConfig::default(), SimConfig::paper());
//! let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
//! let controller = Sheriff::new(&cluster);
//! assert!(!controller.region(RackId(0)).is_empty());
//! let _ = metric;
//! ```

#![warn(missing_docs)]

pub use dcn_sim as sim;
pub use dcn_topology as topology;
pub use sheriff_core as sheriff;
pub use timeseries as forecast;

/// Everything a typical application needs, one `use` away.
pub mod prelude {
    pub use dcn_sim::engine::{Cluster, ClusterConfig, HoltPredictor, ProfilePredictor};
    pub use dcn_sim::{
        Alert, AlertSource, ArimaProfilePredictor, CongestionSim, Profile, RackMetric, SimConfig,
        TorMonitor, VmWorkload,
    };
    pub use dcn_sim::{ChannelFaults, FaultInjector};
    pub use dcn_topology::bcube::{self, BCubeConfig};
    pub use dcn_topology::dcell::{self, DCellConfig};
    pub use dcn_topology::fattree::{self, FatTreeConfig};
    pub use dcn_topology::{Dcn, DependencyGraph, HostId, Placement, RackId, VmId, VmSpec};
    pub use sheriff_core::{
        distributed_round, drain_rack, evacuate_host, fabric_round, priority, sharded_round,
        vmmigration, Budget, DistributedReport, FabricConfig, MigrationContext, MigrationPlan,
        RoundReport, Sheriff, System,
    };
    pub use timeseries::{
        ArimaModel, ArimaSpec, DynamicSelector, HoltWinters, HwConfig, Narnet, NarnetConfig,
        Predictor, SarimaModel, SarimaSpec,
    };
}

//! # sheriff-dcn
//!
//! Facade crate for the Sheriff reproduction (ICPP'15: *Sheriff: A
//! Regional Pre-Alert Management Scheme in Data Center Networks*).
//! Re-exports the four workspace crates:
//!
//! * [`topology`] — Fat-Tree/BCube builders, wired graph, shortest paths,
//!   placement, dependency graph;
//! * [`forecast`] — ARIMA, NARNET, dynamic model selection, synthetic
//!   traces;
//! * [`sim`] — workload profiles, alerts, migration cost model, QCN,
//!   flows, the cluster engine;
//! * [`sheriff`] — the management algorithms (PRIORITY, VMMIGRATION,
//!   REQUEST, k-median local search) and both runtimes, including the
//!   deterministic event core under [`sheriff::sim`](sheriff_core::sim)
//!   that the fabric runtime's virtual-time rounds are scheduled on;
//! * [`scenario`] — declarative experiment files (TOML/JSON), seed
//!   sweeps with fault schedules, parallel deterministic execution.
//!
//! Assemble a system with the validating [`SystemBuilder`](prelude::SystemBuilder)
//! and step it while a recorder observes every round:
//!
//! ```
//! use sheriff_dcn::prelude::*;
//!
//! let dcn = fattree::build(&FatTreeConfig::paper(4));
//! let mut system = SystemBuilder::new(dcn)
//!     .vms_per_host(2.0)
//!     .seed(7)
//!     .workload_len(100)
//!     .build_with_sink(RingRecorder::new(1024))
//!     .expect("paper configuration is valid");
//! system.run(&HoltPredictor::default(), 3);
//! assert_eq!(system.sink().count_kind("round_start"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dcn_sim as sim;
pub use dcn_topology as topology;
pub use sheriff_core as sheriff;
pub use sheriff_obs as obs;
pub use sheriff_scenario as scenario;
pub use timeseries as forecast;

/// Everything a typical application needs, one `use` away, grouped by
/// layer: topology → simulation → management → forecasting →
/// observability.
pub mod prelude {
    // --- topology: builders, graph, placement ------------------------
    pub use dcn_topology::bcube::{self, BCubeConfig};
    pub use dcn_topology::dcell::{self, DCellConfig};
    pub use dcn_topology::fattree::{self, FatTreeConfig};
    pub use dcn_topology::{Dcn, DependencyGraph, HostId, Placement, RackId, VmId, VmSpec};

    // --- simulation: cluster engine, alerts, cost model, faults ------
    pub use dcn_sim::engine::{Cluster, ClusterConfig, HoltPredictor, ProfilePredictor};
    pub use dcn_sim::{
        Alert, AlertSource, ArimaProfilePredictor, CongestionSim, Profile, RackMetric, SimConfig,
        TorMonitor, VmWorkload,
    };
    pub use dcn_sim::{ChannelFaults, FaultInjector, SheriffError};

    // --- management: the four loops behind one Runtime trait ---------
    pub use sheriff_core::{
        audit_placement, drain_rack, evacuate_host, priority, vmmigration, AuditReport, Budget,
        CentralizedRuntime, CrashWindow, DistributedReport, DistributedRuntime, FabricConfig,
        FabricRuntime, FailureDetector, IntentJournal, MigrationContext, MigrationPlan,
        PartitionWindow, RegionFailover, RoundOutcome, RoundReport, RunCtx, Runtime,
        ShardedRuntime, Sheriff, ShimHealth, StepReport, System, SystemBuilder,
    };

    // --- event core: the virtual-time scheduler under the fabric ------
    pub use sheriff_core::sim::{SimContext, Simulation, VirtualTime};

    // --- forecasting: the Sec. III-B predictors ----------------------
    pub use timeseries::{
        ArimaModel, ArimaSpec, DynamicSelector, HoltWinters, HwConfig, Narnet, NarnetConfig,
        Predictor, SarimaModel, SarimaSpec,
    };

    // --- scenarios: declarative sweeps over all of the above ---------
    pub use sheriff_scenario::{aggregate, ScenarioReport, ScenarioRunner, ScenarioSpec};

    // --- observability: structured events, counters, timers ----------
    pub use sheriff_obs::{
        Counters, Event, EventSink, Histogram, JsonLinesSink, NullSink, RingRecorder, Timer,
    };
}

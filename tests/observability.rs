//! The observability contract, end to end across the workspace:
//!
//! 1. **Determinism** — two runs of the same seeded scenario emit
//!    identical event streams (events carry simulation state only;
//!    wall-clock flows through the separate timing channel).
//! 2. **Zero drift** — observing a run must not change it: the step
//!    reports of a `NullSink` system equal those of a fully recorded
//!    one, byte for byte.

use proptest::prelude::*;
use sheriff_dcn::prelude::*;
use sheriff_dcn::sim::flows::Flow;

/// The seeded scenario: a 4-pod Fat-Tree with synthetic workloads and a
/// pair of hot flows so all alert machinery has something to do.
fn build(seed: u64, sink_capacity: usize) -> System<RingRecorder> {
    build_with(seed, RingRecorder::new(sink_capacity))
}

fn build_with<S: EventSink>(seed: u64, sink: S) -> System<S> {
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    let configured = |dcn: Dcn| {
        SystemBuilder::new(dcn)
            .vms_per_host(2.0)
            .skew(2.5)
            .seed(seed)
            .workload_len(150)
    };
    let probe = configured(dcn.clone()).build().expect("valid config");
    let mut flows = Vec::new();
    let vms: Vec<VmId> = probe.cluster.placement.vm_ids().collect();
    for pair in vms.chunks(2) {
        if let [a, b] = *pair {
            if probe.cluster.placement.rack_of(a) != probe.cluster.placement.rack_of(b) {
                flows.push(Flow {
                    src: a,
                    dst: b,
                    rate: 0.4,
                    delay_sensitive: false,
                });
            }
        }
    }
    configured(dcn)
        .flows(flows)
        .build_with_sink(sink)
        .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, two independent systems: the recorded event streams
    /// must match element for element, and so must the counters.
    #[test]
    fn same_seed_same_event_stream(seed in 0u64..200, steps in 5usize..25) {
        let p = HoltPredictor::default();
        let mut a = build(seed, 1 << 14);
        let mut b = build(seed, 1 << 14);
        let ra: Vec<StepReport> = (0..steps).map(|_| a.step(&p)).collect();
        let rb: Vec<StepReport> = (0..steps).map(|_| b.step(&p)).collect();
        prop_assert_eq!(ra, rb);

        let (ra, rb) = (a.into_sink(), b.into_sink());
        prop_assert_eq!(ra.evicted(), 0, "ring too small for the run");
        prop_assert_eq!(ra.to_vec(), rb.to_vec());
        let ca: Vec<_> = ra.counters().iter().collect();
        let cb: Vec<_> = rb.counters().iter().collect();
        prop_assert_eq!(ca, cb);
    }

    /// Observation is free: a system stepped under `NullSink` produces
    /// the exact same step reports as one under a full recorder.
    #[test]
    fn null_sink_runs_do_not_drift(seed in 0u64..200, steps in 5usize..25) {
        let p = HoltPredictor::default();
        let mut silent = build_with(seed, NullSink);
        let mut recorded = build(seed, 1 << 14);
        let rs: Vec<StepReport> = (0..steps).map(|_| silent.step(&p)).collect();
        let rr: Vec<StepReport> = (0..steps).map(|_| recorded.step(&p)).collect();
        prop_assert_eq!(&rs, &rr);
        prop_assert_eq!(format!("{rs:?}"), format!("{rr:?}"));
    }
}

/// The `Runtime` trait streams through the ctx sink deterministically
/// too: two `FabricRuntime` steps over identical clusters and fault
/// seeds record identical streams.
#[test]
fn fabric_runtime_event_stream_is_reproducible() {
    let mk = || {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        SystemBuilder::new(dcn)
            .vms_per_host(2.5)
            .skew(4.0)
            .seed(13)
            .build()
            .expect("valid config")
            .cluster
    };
    let run = |mut cluster: Cluster| {
        let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
        let alerts = cluster.fraction_alerts(0.2, 0);
        let vals: Vec<f64> = cluster
            .placement
            .vm_ids()
            .map(|vm| cluster.placement.utilization(cluster.placement.host_of(vm)))
            .collect();
        let cfg = FabricConfig {
            faults: ChannelFaults::lossy(0.2),
            seed: 5,
            ..FabricConfig::default()
        };
        let mut rec = RingRecorder::new(1 << 14);
        let outcome = FabricRuntime::with_config(cfg).step(&mut RunCtx {
            cluster: &mut cluster,
            metric: &metric,
            alerts: &alerts,
            alert_values: &vals,
            sink: &mut rec,
        });
        (outcome, rec)
    };
    let (oa, ra) = run(mk());
    let (ob, rb) = run(mk());
    assert_eq!(oa.plan.moves, ob.plan.moves);
    assert_eq!(ra.to_vec(), rb.to_vec());
    assert!(ra.count_kind("request_sent") >= ra.count_kind("ack_received"));
}

//! Failure-injection integration tests: dead links, failing hosts, rack
//! drains, degraded-fabric balancing — the crash scenarios Sec. III-A
//! delegates to the "backup system" — and crash-consistency of the 2PC
//! migration fabric under randomized mid-round shim crash/recover
//! schedules on lossy channels.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sheriff_dcn::prelude::*;
use sheriff_dcn::sheriff::{drain_rack, evacuate_host, MigrationContext, Sheriff};
use sheriff_dcn::sim::faults::{fail_link, fail_random_links, racks_connected};

fn cluster(seed: u64) -> Cluster {
    let dcn = fattree::build(&FatTreeConfig::paper(8));
    Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 4.0,
            seed,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    )
}

#[test]
fn balancing_still_works_on_degraded_fabric() {
    let mut c = cluster(51);
    let mut rng = StdRng::seed_from_u64(7);
    // kill 10% of links; an 8-pod fat-tree stays connected
    fail_random_links(&mut c.dcn, &mut rng, 0.10);
    assert!(racks_connected(&c.dcn, c.sim.bandwidth_threshold));
    let metric = RackMetric::build(&c.dcn, &c.sim);
    let sheriff = Sheriff::new(&c);
    let (traj, plan) = sheriff.balance_trajectory(&mut c, &metric, 0.05, 16);
    assert!(!plan.moves.is_empty(), "no migrations on degraded fabric");
    assert!(
        *traj.last().unwrap() < traj[0],
        "balancing regressed: {traj:?}"
    );
    // capacity invariants survive
    for h in 0..c.placement.host_count() {
        let h = HostId::from_index(h);
        assert!(c.placement.used_capacity(h) <= c.placement.host_capacity(h) + 1e-9);
    }
}

#[test]
fn migrations_avoid_dead_links() {
    let mut c = cluster(52);
    // cut every uplink of rack 0 except one: migrations out of rack 0
    // must still succeed through the survivor
    let node = c.dcn.rack_node(RackId(0));
    let edges: Vec<_> = c
        .dcn
        .graph
        .neighbors(node)
        .iter()
        .map(|&(_, e)| e)
        .collect();
    for &e in &edges[1..] {
        fail_link(&mut c.dcn, e);
    }
    let metric = RackMetric::build(&c.dcn, &c.sim);
    assert!(metric.reachable(RackId(0), RackId(1)));
    let host = *c.dcn.inventory.hosts_in(RackId(0)).first().unwrap();
    if c.placement.vms_on(host).is_empty() {
        return;
    }
    let region = c.dcn.neighbor_racks(RackId(0), 2);
    let mut ctx = MigrationContext {
        placement: &mut c.placement,
        inventory: &c.dcn.inventory,
        deps: &c.deps,
        metric: &metric,
        sim: &c.sim,
    };
    let plan = evacuate_host(&mut ctx, host, &region, 5);
    assert!(c.placement.vms_on(host).is_empty());
    assert!(plan.unplaced.is_empty());
}

#[test]
fn cascading_host_failures_are_absorbed() {
    let mut c = cluster(53);
    let metric = RackMetric::build(&c.dcn, &c.sim);
    let vm_total = c.placement.vm_count();
    // fail the three busiest hosts in sequence
    for _ in 0..3 {
        let host = (0..c.placement.host_count())
            .map(HostId::from_index)
            .max_by_key(|&h| c.placement.vms_on(h).len())
            .unwrap();
        let rack = c.placement.rack_of_host(host);
        let region = c.dcn.neighbor_racks(rack, 2);
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let plan = evacuate_host(&mut ctx, host, &region, 5);
        assert!(plan.unplaced.is_empty(), "evacuation left VMs stranded");
        assert!(c.placement.vms_on(host).is_empty());
    }
    // nothing was lost
    assert_eq!(c.placement.vm_count(), vm_total);
    // and no dependency conflicts were created
    for vm in c.placement.vm_ids() {
        let host = c.placement.host_of(vm);
        for &other in c.placement.vms_on(host) {
            assert!(other == vm || !c.deps.dependent(vm, other));
        }
    }
}

#[test]
fn rack_drain_then_balance_round_trip() {
    let mut c = cluster(54);
    let metric = RackMetric::build(&c.dcn, &c.sim);
    let rack = RackId(2);
    let region = c.dcn.neighbor_racks(rack, 4);
    {
        let mut ctx = MigrationContext {
            placement: &mut c.placement,
            inventory: &c.dcn.inventory,
            deps: &c.deps,
            metric: &metric,
            sim: &c.sim,
        };
        let plan = drain_rack(&mut ctx, rack, &region, 5);
        assert!(plan.unplaced.is_empty());
    }
    for &h in c.dcn.inventory.hosts_in(rack) {
        assert!(c.placement.vms_on(h).is_empty());
    }
    // the drain concentrated load elsewhere; a few Sheriff rounds spread
    // it back out
    let before = c.utilization_stddev();
    let sheriff = Sheriff::new(&c);
    let (traj, _) = sheriff.balance_trajectory(&mut c, &metric, 0.05, 10);
    assert!(*traj.last().unwrap() <= before, "{traj:?}");
}

#[test]
fn partitioned_rack_reports_unplaced_instead_of_panicking() {
    let mut c = cluster(55);
    // isolate rack 0 completely
    let node = c.dcn.rack_node(RackId(0));
    let edges: Vec<_> = c
        .dcn
        .graph
        .neighbors(node)
        .iter()
        .map(|&(_, e)| e)
        .collect();
    for e in edges {
        fail_link(&mut c.dcn, e);
    }
    let metric = RackMetric::build(&c.dcn, &c.sim);
    assert!(!metric.reachable(RackId(0), RackId(1)));
    // fill rack 0's hosts so an intra-rack reshuffle cannot absorb the
    // evacuation, then try to evacuate one host
    let hosts = c.dcn.inventory.hosts_in(RackId(0)).to_vec();
    let host = hosts[0];
    let vms: Vec<VmId> = c.placement.vms_on(host).to_vec();
    if vms.is_empty() {
        return;
    }
    // consume the sibling hosts' free capacity
    for &h in &hosts[1..] {
        while c.placement.free_capacity(h) >= 5.0 {
            let spec = VmSpec {
                id: c.placement.next_vm_id(),
                capacity: 5.0,
                value: 1.0,
                delay_sensitive: false,
            };
            if c.placement.add_vm(spec, h).is_err() {
                break;
            }
        }
    }
    let region = c.dcn.neighbor_racks(RackId(0), 4);
    let mut ctx = MigrationContext {
        placement: &mut c.placement,
        inventory: &c.dcn.inventory,
        deps: &c.deps,
        metric: &metric,
        sim: &c.sim,
    };
    let plan = evacuate_host(&mut ctx, host, &region, 3);
    // VMs that cannot cross the partition are reported, not lost
    for vm in &plan.unplaced {
        assert_eq!(c.placement.host_of(*vm), host);
    }
    let accounted = plan.moves.len() + plan.unplaced.len();
    assert_eq!(accounted, vms.len());
}

fn fabric_cluster(seed: u64) -> Cluster {
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 3.0,
            seed,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Crash-consistency of the 2PC migration fabric: under any lossy
    /// channel and any schedule of mid-round shim crashes — with and
    /// without recovery, hitting sources and destinations alike — the
    /// invariant auditor finds nothing (no VM lost, duplicated, over
    /// capacity, co-located with a dependent, or landed offline; journals
    /// agree with the placement) and every prepared transaction resolves
    /// to COMMIT or ABORT before the round settles: no permanent zombies.
    #[test]
    fn fabric_is_crash_consistent_under_random_schedules(
        cluster_seed in 0u64..8,
        net_seed in 0u64..10_000,
        drop in 0.0f64..0.30,
        duplicate in 0.0f64..0.25,
        reorder in 0.0f64..0.25,
        delay_spread in 0u64..3,
        windows in proptest::collection::vec((0usize..16, 0u64..24, 0u64..20), 1..4),
    ) {
        let mut c = fabric_cluster(cluster_seed);
        let initial = c.placement.clone();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.15, 0);
        prop_assume!(!alerts.is_empty());
        let vals: Vec<f64> = c
            .placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect();

        // one crash window per distinct rack; rack indices are drawn over
        // the whole fat-tree so the schedule hits alerted sources and
        // innocent destinations alike, and recover_delay 0 = stays down
        let racks = c.dcn.rack_count();
        let mut crashed: Vec<CrashWindow> = Vec::new();
        for &(rack, crash_at, recover_delay) in &windows {
            let rack = RackId::from_index(rack % racks);
            if crashed.iter().any(|w| w.rack == rack) {
                continue;
            }
            crashed.push(CrashWindow {
                rack,
                crash_at,
                recover_at: (recover_delay > 0).then(|| crash_at + recover_delay),
            });
        }

        let cfg = FabricConfig {
            faults: ChannelFaults {
                drop,
                duplicate,
                reorder,
                delay_min: 1,
                delay_max: 1 + delay_spread,
            },
            seed: net_seed,
            crashed,
            ..FabricConfig::default()
        };
        let report = FabricRuntime::with_config(cfg.clone()).step(&mut RunCtx {
            cluster: &mut c,
            metric: &metric,
            alerts: &alerts,
            alert_values: &vals,
            sink: &mut NullSink,
        });

        prop_assert!(report.ticks <= cfg.max_ticks, "round wedged");
        prop_assert!(report.audit.is_clean(), "{}", report.audit);
        prop_assert_eq!(
            report.txn_committed + report.txn_aborted,
            report.txn_prepared,
            "a prepared transaction neither committed nor aborted"
        );

        // exactly-once despite crashes: replaying the recorded moves from
        // the initial placement reproduces the final placement
        let mut loc: std::collections::HashMap<VmId, HostId> = c
            .placement
            .vm_ids()
            .map(|vm| (vm, initial.host_of(vm)))
            .collect();
        for m in &report.plan.moves {
            prop_assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
            loc.insert(m.vm, m.to);
        }
        for vm in c.placement.vm_ids() {
            prop_assert_eq!(loc[&vm], c.placement.host_of(vm));
        }
    }

    /// Partition tolerance: under any schedule of named partition cuts
    /// and heals — minority cuts, overlapping sets, cuts that never heal
    /// — the fabric's audit stays clean, every prepared transaction
    /// resolves, a partition alone never triggers a takeover or an epoch
    /// bump (the detector watches heartbeat *emission*, and a cut shim
    /// keeps emitting), and five repeat runs are byte-identical.
    #[test]
    fn fabric_survives_random_partition_heal_schedules(
        cluster_seed in 0u64..8,
        net_seed in 0u64..10_000,
        drop in 0.0f64..0.15,
        parts in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..16, 1..4),
                0u64..16,
                0u64..24,
            ),
            1..3,
        ),
    ) {
        let racks = fabric_cluster(cluster_seed).dcn.rack_count();
        let partitions: Vec<PartitionWindow> = parts
            .iter()
            .map(|(members, start_at, heal_delay)| {
                let members: Vec<RackId> =
                    members.iter().map(|&r| RackId::from_index(r % racks)).collect();
                PartitionWindow::new(
                    members,
                    *start_at,
                    (*heal_delay > 0).then(|| start_at + heal_delay),
                )
            })
            .collect();
        let cfg = FabricConfig {
            faults: ChannelFaults {
                drop,
                delay_min: 1,
                delay_max: 2,
                ..ChannelFaults::reliable()
            },
            seed: net_seed,
            partitions,
            ..FabricConfig::default()
        };

        let mut reference: Option<String> = None;
        for attempt in 0..5 {
            let mut c = fabric_cluster(cluster_seed);
            let initial = c.placement.clone();
            let metric = RackMetric::build(&c.dcn, &c.sim);
            let alerts = c.fraction_alerts(0.15, 0);
            prop_assume!(!alerts.is_empty());
            let vals: Vec<f64> = c
                .placement
                .vm_ids()
                .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
                .collect();
            let report = FabricRuntime::with_config(cfg.clone()).step(&mut RunCtx {
                cluster: &mut c,
                metric: &metric,
                alerts: &alerts,
                alert_values: &vals,
                sink: &mut NullSink,
            });

            prop_assert!(report.ticks <= cfg.max_ticks, "round wedged");
            prop_assert!(report.audit.is_clean(), "{}", report.audit);
            prop_assert_eq!(
                report.txn_committed + report.txn_aborted,
                report.txn_prepared,
                "a prepared transaction neither committed nor aborted"
            );
            prop_assert_eq!(report.takeovers, 0, "a partition is not a crash");
            prop_assert_eq!(report.fenced, 0, "no epoch bumped, nothing to fence");

            // exactly-once under the cut: the recorded moves replayed
            // from the initial placement land on the final one
            let mut loc: std::collections::HashMap<VmId, HostId> = c
                .placement
                .vm_ids()
                .map(|vm| (vm, initial.host_of(vm)))
                .collect();
            for m in &report.plan.moves {
                prop_assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
                loc.insert(m.vm, m.to);
            }
            for vm in c.placement.vm_ids() {
                prop_assert_eq!(loc[&vm], c.placement.host_of(vm));
            }

            let digest = format!(
                "{:?}|{:?}|{}|{}|{}|{}|{}",
                report
                    .plan
                    .moves
                    .iter()
                    .map(|m| (m.vm, m.from, m.to))
                    .collect::<Vec<_>>(),
                c.placement
                    .vm_ids()
                    .map(|vm| c.placement.host_of(vm))
                    .collect::<Vec<_>>(),
                report.ticks,
                report.drops,
                report.partition_degraded,
                report.reconciliations,
                report.txn_committed,
            );
            match &reference {
                None => reference = Some(digest),
                Some(r) => prop_assert_eq!(
                    r,
                    &digest,
                    "run {} diverged under the same partition schedule",
                    attempt
                ),
            }
        }
    }
}

//! Determinism proofs for the scenario engine: the parallel seed sweep
//! is byte-identical to the serial one, and re-running a spec file
//! reproduces the same canonical report.

use proptest::prelude::*;
use sheriff_dcn::prelude::{aggregate, ScenarioRunner, ScenarioSpec};

fn canonical(spec: &ScenarioSpec, parallel: bool, threads: usize) -> String {
    let mut runner = ScenarioRunner::new(spec.clone());
    runner.parallel = parallel;
    runner.threads = threads;
    let runs = runner.run().expect("scenario runs");
    aggregate(spec, &runs).canonical_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole contract: for any small scenario — any runtime, any
    /// seed pair, faults or not — the parallel sweep's canonical report
    /// is byte-identical to the serial one.
    #[test]
    fn parallel_sweep_matches_serial_byte_for_byte(
        base_seed in 1u64..1000,
        rounds in 1usize..4,
        runtime in 0usize..4,
        threads in 1usize..5,
        with_fault in any::<bool>(),
    ) {
        let runtime = ["centralized", "distributed", "sharded", "fabric"][runtime];
        let fault = if with_fault {
            "\n[[fault]]\nround = 1\naction = \"fail_host\"\nhost = 0\n"
        } else {
            ""
        };
        let src = format!(
            r#"
name = "prop"
rounds = {rounds}
seeds = [{base_seed}, {}]

[topology]
kind = "fat_tree"
pods = 4

[cluster]
vms_per_host = 1.5
skew = 2.0

[runtime]
kind = "{runtime}"
{fault}"#,
            base_seed + 1
        );
        let spec = ScenarioSpec::parse_str(&src).expect("generated spec parses");
        spec.validate().expect("generated spec is valid");
        let serial = canonical(&spec, false, 0);
        let parallel = canonical(&spec, true, threads);
        prop_assert_eq!(serial, parallel);
    }
}

#[test]
fn rerunning_a_shipped_spec_file_reproduces_the_report() {
    // the bundled Fig. 9 scenario, truncated so the test stays fast;
    // truncation happens after parse, exactly like `scenarios --check`
    let mut spec = ScenarioSpec::load(std::path::Path::new("scenarios/fig9_prealert.toml"))
        .expect("bundled scenario parses");
    spec.rounds = 4;
    spec.seeds.truncate(2);
    let first = canonical(&spec, true, 0);
    let second = canonical(&spec, true, 2);
    let third = canonical(&spec, false, 0);
    assert_eq!(first, second, "parallel re-run diverged");
    assert_eq!(first, third, "serial run diverged from parallel");
    assert!(first.contains("\"columns\": [\"round\", \"stddev_pct\"]"));
    assert!(!first.contains("timings_ns"));
}

#[test]
fn mid_round_crash_scenario_is_deterministic_with_clean_audit() {
    // the crash-consistency scenario: shims die and recover *inside*
    // rounds; parallel must still equal serial byte-for-byte, and the
    // always-on auditor columns must report zero violations
    let mut spec = ScenarioSpec::load(std::path::Path::new("scenarios/mid_round_shim_crash.toml"))
        .expect("bundled scenario parses");
    spec.seeds.truncate(2);
    let serial = canonical(&spec, false, 0);
    let parallel = canonical(&spec, true, 2);
    assert_eq!(serial, parallel, "mid-round crashes broke determinism");
    for metric in [
        "audit_violations_total",
        "txn_committed_total",
        "txn_aborted_total",
        "shim_recoveries_total",
    ] {
        assert!(serial.contains(metric), "report lacks {metric}");
    }

    // per-round ground truth: the auditor never fires, transactions
    // commit, and the round-3 mid-round crash recovers in-round
    let mut runner = ScenarioRunner::new(spec.clone());
    runner.parallel = false;
    let runs = runner.run().expect("scenario runs");
    for run in &runs {
        for s in &run.rounds {
            assert_eq!(
                s.audit_violations, 0,
                "seed {} round {}: auditor found violations",
                run.seed, s.round
            );
        }
        assert!(
            run.rounds.iter().map(|s| s.txn_committed).sum::<usize>() > 0,
            "seed {}: no transaction ever committed",
            run.seed
        );
        assert!(
            run.rounds.iter().map(|s| s.recoveries).sum::<usize>() >= 1,
            "seed {}: the scheduled mid-round recovery never happened",
            run.seed
        );
    }
}

#[test]
fn fabric_shim_fate_settlement_order_is_not_hash_order() {
    // regression for the DET02 conversions in sheriff-core: the fabric
    // shim's outstanding/zombie tables and the audit journal index used
    // to be HashMaps, whose per-instance RandomState made the drain
    // order at crash/settlement time differ between runs *in the same
    // process*. A lossy channel plus mid-round crashes maximises how
    // many requests those tables hold when they are drained; five
    // repeat runs must produce byte-identical canonical reports.
    let src = r#"
name = "fate_order"
rounds = 8
seeds = [71, 72]

[topology]
kind = "fat_tree"
pods = 8

[cluster]
vms_per_host = 2.0
skew = 3.0

[workload]
alert_fraction = 0.08

[runtime]
kind = "fabric"
max_retry = 2

[sim.channel]
drop = 0.25
delay_min = 1
delay_max = 3

[[fault]]
round = 2
action = "crash_shim"
rack = 0
crash_at = 3
recover_at = 11

[[fault]]
round = 4
action = "crash_shim"
rack = 2
crash_at = 5
"#;
    let spec = ScenarioSpec::parse_str(src).expect("spec parses");
    spec.validate().expect("spec is valid");
    let reference = canonical(&spec, false, 0);
    for attempt in 1..5 {
        let again = canonical(&spec, attempt % 2 == 0, 2);
        assert_eq!(
            reference, again,
            "run {attempt}: shim fate settlement leaked hash iteration order"
        );
    }
}

#[test]
fn zombie_shim_scenario_takes_over_and_fences_the_returner() {
    // the bundled zombie scenario is the epoch-fencing acceptance test:
    // the detector must declare rack 0 dead, a neighbour must take its
    // region over, and the returning shim's stale 2PC burst must be
    // rejected — for every seed in the file
    let spec = ScenarioSpec::load(std::path::Path::new("scenarios/zombie_shim.toml"))
        .expect("bundled scenario parses");
    let mut runner = ScenarioRunner::new(spec.clone());
    runner.parallel = false;
    let runs = runner.run().expect("scenario runs");
    for run in &runs {
        assert!(
            run.counters.get("shim_declared_dead") >= 1,
            "seed {}: the detector never declared rack 0 dead",
            run.seed
        );
        assert!(
            run.rounds.iter().map(|s| s.takeovers).sum::<usize>() >= 1,
            "seed {}: nobody took the dead region over",
            run.seed
        );
        assert!(
            run.counters.get("stale_epoch_rejected") >= 1,
            "seed {}: the returning zombie was never fenced",
            run.seed
        );
        for s in &run.rounds {
            assert_eq!(
                s.audit_violations, 0,
                "seed {} round {}: auditor found violations",
                run.seed, s.round
            );
        }
    }
    // determinism holds with the failover machinery engaged
    let serial = canonical(&spec, false, 0);
    let parallel = canonical(&spec, true, 2);
    assert_eq!(serial, parallel, "takeover/fencing broke determinism");
}

#[test]
fn region_partition_scenario_degrades_and_heals_clean() {
    let spec = ScenarioSpec::load(std::path::Path::new("scenarios/region_partition.toml"))
        .expect("bundled scenario parses");
    let mut runner = ScenarioRunner::new(spec.clone());
    runner.parallel = false;
    let runs = runner.run().expect("scenario runs");
    for run in &runs {
        assert!(
            run.rounds
                .iter()
                .map(|s| s.partition_degraded)
                .sum::<usize>()
                > 0,
            "seed {}: the cut never degraded anyone",
            run.seed
        );
        // a partition is not a crash: emission-based detection must not
        // let the cut trigger a takeover or any fencing
        assert_eq!(
            run.rounds.iter().map(|s| s.takeovers).sum::<usize>(),
            0,
            "seed {}: a partition masqueraded as a crash",
            run.seed
        );
        for s in &run.rounds {
            assert_eq!(
                s.audit_violations, 0,
                "seed {} round {}: auditor found violations",
                run.seed, s.round
            );
        }
    }
    let serial = canonical(&spec, false, 0);
    let parallel = canonical(&spec, true, 2);
    assert_eq!(serial, parallel, "partitions broke determinism");
}

#[test]
fn every_bundled_scenario_parses_and_validates_clean() {
    let dir = std::path::Path::new("scenarios");
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("scenarios/ exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    entries.sort();
    for path in entries {
        let spec = ScenarioSpec::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let warnings = spec
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            warnings.is_empty(),
            "{}: shipped scenarios must be warning-free: {warnings:?}",
            path.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 6,
        "expected the full scenario library, found {checked}"
    );
}

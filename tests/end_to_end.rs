//! Integration tests spanning every crate: the full Sheriff pipeline from
//! synthetic workloads through prediction, alerting, and regional
//! management, on both topology families.

use sheriff_dcn::prelude::*;
use sheriff_dcn::sim::flows::{Flow, FlowNetwork};

fn cluster_on(dcn: Dcn, seed: u64, workload_len: usize) -> Cluster {
    Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 4.0,
            workload_len,
            seed,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    )
}

#[test]
fn full_pipeline_prediction_to_migration() {
    // 1. build a populated Fat-Tree with real per-VM workload traces
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    let mut cluster = cluster_on(dcn, 8, 200);
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    let sheriff = Sheriff::new(&cluster);

    // 2. predict each VM's next profile and raise pre-alerts
    let t = 150;
    let alerts = cluster.predicted_alerts(&HoltPredictor::default(), t);
    // synthetic CPU traces exceed 90% regularly: some host must pre-alert
    assert!(!alerts.is_empty(), "expected pre-alerts from hot workloads");
    for a in &alerts {
        assert!(a.severity > cluster.sim.alert_threshold);
    }

    // 3. the shims act on the alerts
    let utils: Vec<f64> = cluster
        .placement
        .vm_ids()
        .map(|vm| cluster.placement.utilization(cluster.placement.host_of(vm)))
        .collect();
    let report = sheriff.round(&mut cluster, &metric, None, &alerts, &|vm| {
        utils[vm.index()]
    });
    assert!(report.shims_active > 0);

    // 4. invariants hold afterwards
    for h in 0..cluster.placement.host_count() {
        let h = HostId::from_index(h);
        assert!(cluster.placement.used_capacity(h) <= cluster.placement.host_capacity(h) + 1e-9);
    }
}

#[test]
fn balance_improves_on_both_topologies() {
    for (name, dcn) in [
        ("fattree", fattree::build(&FatTreeConfig::paper(8))),
        ("bcube", bcube::build(&BCubeConfig::paper(8))),
    ] {
        let mut cluster = cluster_on(dcn, 3, 0);
        let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
        let sheriff = Sheriff::new(&cluster);
        let (traj, plan) = sheriff.balance_trajectory(&mut cluster, &metric, 0.05, 24);
        assert!(*traj.last().unwrap() < traj[0] * 0.7, "{name}: {:?}", traj);
        assert!(!plan.moves.is_empty(), "{name}: no moves");
        // no dependency conflicts were created
        for vm in cluster.placement.vm_ids() {
            let host = cluster.placement.host_of(vm);
            for &other in cluster.placement.vms_on(host) {
                assert!(
                    other == vm || !cluster.deps.dependent(vm, other),
                    "{name}: conflict between {vm} and {other}"
                );
            }
        }
    }
}

#[test]
fn sequential_and_distributed_runtimes_both_balance() {
    let dcn1 = fattree::build(&FatTreeConfig::paper(8));
    let dcn2 = fattree::build(&FatTreeConfig::paper(8));
    let mut seq = cluster_on(dcn1, 5, 0);
    let mut dist = cluster_on(dcn2, 5, 0);
    let metric = RackMetric::build(&seq.dcn, &seq.sim);
    let sheriff = Sheriff::new(&seq);
    let initial = seq.utilization_stddev();
    assert_eq!(initial, dist.utilization_stddev(), "identical start");

    for t in 0..8 {
        let alerts = seq.fraction_alerts(0.05, t);
        let utils: Vec<f64> = seq
            .placement
            .vm_ids()
            .map(|vm| seq.placement.utilization(seq.placement.host_of(vm)))
            .collect();
        sheriff.round(&mut seq, &metric, None, &alerts, &|vm| utils[vm.index()]);

        let alerts = dist.fraction_alerts(0.05, t);
        let vals: Vec<f64> = dist
            .placement
            .vm_ids()
            .map(|vm| dist.placement.utilization(dist.placement.host_of(vm)))
            .collect();
        DistributedRuntime { max_retry: 3 }.step(&mut RunCtx {
            cluster: &mut dist,
            metric: &metric,
            alerts: &alerts,
            alert_values: &vals,
            sink: &mut NullSink,
        });
    }
    assert!(
        seq.utilization_stddev() < initial * 0.75,
        "sequential runtime stalled"
    );
    assert!(
        dist.utilization_stddev() < initial * 0.75,
        "distributed runtime stalled"
    );
}

#[test]
fn reroute_then_migrate_ordering() {
    // "shim will implement flow reroute first and then deal with VM
    // migration" — an outer-switch alert must never cause migration
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    let mut cluster = cluster_on(dcn, 9, 0);
    let src = cluster
        .placement
        .vm_ids()
        .find(|&vm| {
            cluster.placement.rack_of(vm) == RackId(0)
                && !cluster.placement.spec(vm).delay_sensitive
        })
        .expect("migratable VM in rack 0");
    let dst = cluster
        .placement
        .vm_ids()
        .find(|&vm| cluster.placement.rack_of(vm) == RackId(2))
        .expect("VM in rack 2");
    let mut flows = FlowNetwork::route(
        &cluster.dcn,
        &cluster.placement,
        vec![Flow {
            src,
            dst,
            rate: 0.95,
            delay_sensitive: false,
        }],
    );
    let hot = flows.congested_switches(&cluster.dcn, 0.9);
    assert!(!hot.is_empty());
    let (sw, sev) = hot[0];
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    let region = cluster.region_of(RackId(0));
    let mut ctx = MigrationContext {
        placement: &mut cluster.placement,
        inventory: &cluster.dcn.inventory,
        deps: &cluster.deps,
        metric: &metric,
        sim: &cluster.sim,
    };
    let out = sheriff_dcn::sheriff::pre_alert_management(
        &mut ctx,
        &cluster.dcn,
        Some(&mut flows),
        RackId(0),
        &region,
        &[Alert {
            rack: RackId(0),
            source: AlertSource::OuterSwitch(sw),
            severity: sev.min(1.0),
            time: 0,
        }],
        &|_| 0.95,
        3,
    );
    assert_eq!(out.plan.moves.len(), 0, "switch alert must not migrate");
    assert_eq!(out.reroutes.rerouted, 1);
    assert!(flows.flows_through_switch(&cluster.dcn, sw).is_empty());
}

#[test]
fn forecasting_feeds_alert_rule_end_to_end() {
    // ARIMA forecast of a rising series must cross the alert threshold
    // before the actual value does — the "pre" in pre-alert
    use sheriff_dcn::forecast::generator::{weekly_traffic_trace, TraceConfig};
    let cfg = TraceConfig {
        len: 400,
        samples_per_day: 72,
        seed: 4,
    };
    let y = weekly_traffic_trace(&cfg);
    let model = ArimaModel::fit(&y[..300], ArimaSpec::new(1, 1, 1)).expect("fits");
    let fc = model.forecast(&y[..300], 10);
    assert_eq!(fc.len(), 10);
    // forecasts stay within a sane envelope of the observed range
    let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for f in fc {
        assert!(
            f > lo - (hi - lo) && f < hi + (hi - lo),
            "runaway forecast {f}"
        );
    }
}

#[test]
fn cross_topology_metric_consistency() {
    // the Eqn. 1 metric must satisfy basic sanity on every topology
    for dcn in [
        fattree::build(&FatTreeConfig::paper(4)),
        bcube::build(&BCubeConfig::paper(4)),
    ] {
        let sim = SimConfig::paper();
        let metric = RackMetric::build(&dcn, &sim);
        let n = dcn.rack_count();
        for i in 0..n.min(6) {
            for j in 0..n.min(6) {
                let (a, b) = (RackId::from_index(i), RackId::from_index(j));
                let c = metric.migration_cost(&sim, 10.0, a, b, 1.0);
                assert!(c >= sim.c_r, "cost below C_r");
                if i != j {
                    let back = metric.migration_cost(&sim, 10.0, b, a, 1.0);
                    assert!((c - back).abs() < 1e-9, "asymmetric cost {c} vs {back}");
                }
            }
        }
    }
}

use sheriff_dcn::sheriff::MigrationContext;

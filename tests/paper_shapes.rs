//! Shape tests for the paper's evaluation claims, run at reduced scale
//! through the same harness code that generates EXPERIMENTS.md (see
//! DESIGN.md §6 for what "matching the paper" means here).

use sheriff_bench::scale::{run_point, sweep, Topo};
use sheriff_bench::{balance, forecast, ratio, traces};

#[test]
fn fig3_to_5_traces_have_paper_ranges() {
    let cpu = traces::fig3(1);
    assert!(cpu.rows.iter().all(|r| (0.0..=100.0).contains(&r[1])));
    let io = traces::fig4(1);
    assert!(io.rows.iter().all(|r| (0.0..=1200.0).contains(&r[1])));
    let traffic = traces::fig5(1);
    // "peaks and troughs regularly": strong daily autocorrelation noted
    assert!(traffic.notes[0].contains("daily-lag ACF"));
    let acf: f64 = traffic.notes[0]
        .rsplit("ACF ")
        .next()
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(acf > 0.3, "weekly traffic lost its periodicity: {acf}");
}

#[test]
fn fig6_arima_tracks_traffic() {
    let t = forecast::fig6(1).expect("fits");
    // bias column stays small relative to the signal for most points
    let big_bias = t
        .rows
        .iter()
        .filter(|r| r[3].abs() > 0.5 * r[1].abs().max(1.0))
        .count();
    assert!(
        big_bias * 10 < t.rows.len(),
        "{big_bias}/{} points with >50% bias",
        t.rows.len()
    );
}

#[test]
fn fig8_combined_model_is_competitive() {
    let t = forecast::fig8(1);
    // last-but-one note holds "combined ... (best single = ...)"
    let note = t
        .notes
        .iter()
        .find(|n| n.contains("combined model"))
        .expect("combined note present");
    let combined: f64 = extract(note, "test MSE = ");
    let best: f64 = extract(note, "best single = ");
    assert!(
        combined <= best * 1.25,
        "combined {combined} vs best {best}"
    );
}

#[test]
fn fig9_fig10_balance_curves_decline() {
    for t in [balance::fig9(1), balance::fig10(1)] {
        let first = t.rows.first().unwrap()[1];
        let last = t.rows.last().unwrap()[1];
        assert!(last < first * 0.65, "{}: {first:.1} -> {last:.1}", t.id);
        // near-monotone decline, as in the paper's curves
        let ups = t
            .rows
            .windows(2)
            .filter(|w| w[1][1] > w[0][1] + 1.0)
            .count();
        assert!(ups <= 2, "{}: {ups} significant upticks", t.id);
    }
}

#[test]
fn fig11_to_14_shapes_hold_at_reduced_scale() {
    for topo in [Topo::FatTree, Topo::BCube] {
        let (cost, space) = sweep(topo, &[4, 8, 12], 1);
        // cost grows with scale for both managers
        assert!(
            cost.rows[2][2] > cost.rows[0][2],
            "{topo:?} sheriff cost flat"
        );
        assert!(
            cost.rows[2][3] > cost.rows[0][3],
            "{topo:?} central cost flat"
        );
        // Sheriff stays close to the centralized optimal
        for row in &cost.rows {
            if row[3] > 0.0 {
                let ratio = row[2] / row[3];
                assert!(
                    (0.5..=1.5).contains(&ratio),
                    "{topo:?}: APP/OPT ratio {ratio} out of band"
                );
            }
        }
        // search-space gap exists everywhere and widens with scale
        for row in &space.rows {
            assert!(row[2] > row[1], "{topo:?}: centralized space not larger");
        }
        assert!(
            space.rows[2][3] > space.rows[0][3],
            "{topo:?}: gap must widen with scale"
        );
    }
}

#[test]
fn approximation_ratio_respects_bound() {
    let t = ratio::ratio_experiment(6, 3, 1);
    for row in &t.rows {
        assert_eq!(row[4], 1.0, "p={} violated 3+2/p", row[0]);
    }
    // the bound itself decreases in p
    assert!(t.rows[2][3] < t.rows[0][3]);
}

#[test]
fn single_point_reproducible() {
    let a = run_point(Topo::FatTree, 4, 9);
    let b = run_point(Topo::FatTree, 4, 9);
    assert_eq!(a.sheriff_cost, b.sheriff_cost);
    assert_eq!(a.central_space, b.central_space);
    assert_eq!(a.candidates, b.candidates);
}

fn extract(note: &str, key: &str) -> f64 {
    let start = note.find(key).expect("key present") + key.len();
    let rest = &note[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().expect("number parses")
}

//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;
use sheriff_dcn::forecast::series::{difference, undifference};
use sheriff_dcn::forecast::MinMaxScaler;
use sheriff_dcn::prelude::*;
use sheriff_dcn::sheriff::matching::{min_cost_assignment_padded, FORBIDDEN};
use sheriff_dcn::sheriff::{priority, request_migration, Budget};
use sheriff_dcn::topology::Inventory;

proptest! {
    /// ∇ followed by integration reproduces the original tail for any d.
    #[test]
    fn difference_roundtrip(
        y in prop::collection::vec(-1e6f64..1e6, 5..60),
        d in 1usize..3,
    ) {
        prop_assume!(y.len() > d + 1);
        let (dy, _) = difference(&y, d);
        // rebuild the last point step by step: seeds from the prefix
        let prefix = &y[..y.len() - 1];
        let (pdy, pseeds) = difference(prefix, d);
        prop_assume!(!pdy.is_empty());
        let rebuilt = undifference(&dy[dy.len() - 1..], &pseeds);
        prop_assert!((rebuilt[0] - y[y.len() - 1]).abs() < 1e-6 * y[y.len()-1].abs().max(1.0));
    }

    /// Min-max scaling is a clamped bijection on the fitted range.
    #[test]
    fn scaler_roundtrip(y in prop::collection::vec(-1e5f64..1e5, 2..50), probe in -1e5f64..1e5) {
        let s = MinMaxScaler::fit(&y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let t = s.transform(probe);
        prop_assert!((0.0..=1.0).contains(&t));
        if (hi - lo) > 1e-9 && probe >= lo && probe <= hi {
            prop_assert!((s.inverse(t) - probe).abs() < 1e-6 * (hi - lo));
        }
    }

    /// The Hungarian assignment is always a valid matching and never
    /// assigns a forbidden pair.
    #[test]
    fn matching_validity(
        rows in 1usize..7,
        cols in 1usize..7,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cost: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| {
                if rng.gen_bool(0.2) { FORBIDDEN } else { rng.gen_range(0.0..100.0) }
            }).collect())
            .collect();
        let (assign, total) = min_cost_assignment_padded(&cost);
        let mut used = std::collections::HashSet::new();
        let mut expect_total = 0.0;
        for (i, a) in assign.iter().enumerate() {
            if let Some(j) = a {
                prop_assert!(used.insert(*j), "column used twice");
                prop_assert!(cost[i][*j] < FORBIDDEN / 2.0, "forbidden pair assigned");
                expect_total += cost[i][*j];
            }
        }
        prop_assert!((total - expect_total).abs() < 1e-6);
    }

    /// PRIORITY respects its budget and never selects delay-sensitive VMs.
    #[test]
    fn priority_budget_respected(
        caps in prop::collection::vec((1.0f64..25.0, 0.5f64..10.0, any::<bool>()), 1..15),
        budget in 1.0f64..120.0,
    ) {
        let mut inv = Inventory::new();
        inv.add_rack(1, 1e6, 1e6);
        let mut p = Placement::new(&inv);
        let mut ids = Vec::new();
        for (cap, value, ds) in &caps {
            let spec = VmSpec {
                id: p.next_vm_id(),
                capacity: cap.round().max(1.0),
                value: *value,
                delay_sensitive: *ds,
            };
            ids.push(p.add_vm(spec, HostId(0)).unwrap());
        }
        let chosen = priority(&ids, &p, |_| 0.5, Budget::Capacity(budget));
        let total: f64 = chosen.iter().map(|&vm| p.spec(vm).capacity).sum();
        prop_assert!(total <= budget + 1e-9, "selected {total} > budget {budget}");
        for vm in &chosen {
            prop_assert!(!p.spec(*vm).delay_sensitive);
        }
        // no duplicates
        let set: std::collections::HashSet<_> = chosen.iter().collect();
        prop_assert_eq!(set.len(), chosen.len());
    }

    /// Migration sequences preserve total VM capacity and never
    /// overcommit a host.
    #[test]
    fn migration_conserves_capacity(
        seed in 0u64..500,
        moves in 1usize..30,
    ) {
        use rand::{Rng, SeedableRng};
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut cluster = Cluster::build(
            dcn,
            &ClusterConfig { vms_per_host: 2.0, skew: 2.0, seed, ..ClusterConfig::default() },
            SimConfig::paper(),
        );
        let before: f64 = (0..cluster.placement.host_count())
            .map(|h| cluster.placement.used_capacity(HostId::from_index(h)))
            .sum();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let n = cluster.placement.vm_count();
        prop_assume!(n > 0);
        for _ in 0..moves {
            let vm = VmId::from_index(rng.gen_range(0..n));
            let host = HostId::from_index(rng.gen_range(0..cluster.placement.host_count()));
            // outcome may be Ack or any Reject; invariants must hold regardless
            let _ = request_migration(&mut cluster.placement, &cluster.deps, vm, host);
        }
        let after: f64 = (0..cluster.placement.host_count())
            .map(|h| cluster.placement.used_capacity(HostId::from_index(h)))
            .sum();
        prop_assert!((before - after).abs() < 1e-6, "capacity not conserved");
        for h in 0..cluster.placement.host_count() {
            let h = HostId::from_index(h);
            prop_assert!(cluster.placement.used_capacity(h) <= cluster.placement.host_capacity(h) + 1e-9);
        }
        // per-VM host bookkeeping is consistent with per-host lists
        for vm in cluster.placement.vm_ids() {
            let host = cluster.placement.host_of(vm);
            prop_assert!(cluster.placement.vms_on(host).contains(&vm));
        }
    }

    /// Fat-Tree structural invariants hold for every even pod count.
    #[test]
    fn fattree_structure(k in (1usize..9).prop_map(|v| v * 2)) {
        let cfg = FatTreeConfig::paper(k);
        let dcn = fattree::build(&cfg);
        prop_assert_eq!(dcn.rack_count(), k * k / 2);
        prop_assert!(dcn.graph.is_connected());
        // every rack has k/2 uplinks
        for &node in &dcn.rack_nodes {
            prop_assert_eq!(dcn.graph.degree(node), k / 2);
        }
    }

    /// BCube structural invariants hold for any (n, k) in range.
    #[test]
    fn bcube_structure(n in 2usize..7, k in 0usize..3) {
        let cfg = BCubeConfig { k, ..BCubeConfig::paper(n) };
        let dcn = bcube::build(&cfg);
        prop_assert_eq!(dcn.rack_count(), n.pow(k as u32 + 1));
        prop_assert!(dcn.graph.is_connected());
        for &node in &dcn.rack_nodes {
            prop_assert_eq!(dcn.graph.degree(node), k + 1);
        }
        for sw in dcn.graph.switch_indices() {
            prop_assert_eq!(dcn.graph.degree(sw), n);
        }
    }

    /// The rack metric is symmetric, zero on the diagonal, and respects
    /// the triangle inequality within numerical slack (it is built from
    /// shortest paths).
    #[test]
    fn rack_metric_is_metric_like(seed in 0u64..50) {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let sim = SimConfig::paper();
        let metric = RackMetric::build(&dcn, &sim);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = dcn.rack_count();
        let a = RackId::from_index(rng.gen_range(0..n));
        let b = RackId::from_index(rng.gen_range(0..n));
        let c = RackId::from_index(rng.gen_range(0..n));
        prop_assert_eq!(metric.distance(a, a), 0.0);
        prop_assert!((metric.distance(a, b) - metric.distance(b, a)).abs() < 1e-9);
        prop_assert!(metric.distance(a, c) <= metric.distance(a, b) + metric.distance(b, c) + 1e-9);
    }
}

//! The prediction phase of Sheriff (Sec. IV): fit ARIMA and NARNET to a
//! server's workload history, combine them with the rolling-MSE selector,
//! and raise pre-alerts when the *predicted* profile crosses the
//! threshold — before the overload actually happens.
//!
//! ```text
//! cargo run --release --example forecast_workload
//! ```

use sheriff_dcn::forecast::generator::{weekly_traffic_trace, TraceConfig};
use sheriff_dcn::forecast::metrics::mse;
use sheriff_dcn::prelude::*;

fn main() {
    // a week of switch traffic at 2-hour granularity
    let cfg = TraceConfig {
        len: 7 * 72,
        samples_per_day: 72,
        seed: 11,
    };
    let traffic = weekly_traffic_trace(&cfg);
    let split = traffic.len() / 2;

    // --- ARIMA(1,1,1), the paper's Fig. 6 model -------------------------
    let arima = ArimaModel::fit(&traffic[..split], ArimaSpec::new(1, 1, 1))
        .expect("traffic trace is well-behaved");
    let arima_preds = arima.rolling_one_step(&traffic, split);
    println!(
        "ARIMA(1,1,1): phi={:?} theta={:?}, test MSE {:.2}",
        arima.phi,
        arima.theta,
        mse(&arima_preds, &traffic[split..])
    );

    // --- NARNET with 20 hidden neurons (Fig. 7) -------------------------
    let narnet = Narnet::fit(
        &traffic[..split],
        NarnetConfig {
            lags: 8,
            hidden: 20,
            ..NarnetConfig::default()
        },
    );
    let nn_preds = narnet.rolling_one_step(&traffic, split);
    println!(
        "NARNET(8 lags, 20 hidden): test MSE {:.2}",
        mse(&nn_preds, &traffic[split..])
    );

    // --- dynamic selection (Fig. 8, Eqn. 14) -----------------------------
    let mut selector = DynamicSelector::new(
        vec![Predictor::Arima(arima.clone()), Predictor::Narnet(narnet)],
        20,
    );
    let (combined, used) = selector.run(&traffic, split);
    let switches = used.windows(2).filter(|w| w[0] != w[1]).count();
    println!(
        "combined: test MSE {:.2}, model switches {switches}",
        mse(&combined, &traffic[split..])
    );

    // --- k-step-ahead pre-alerting (Sec. IV-C) ---------------------------
    // predict the next 6 steps; alert if the normalised forecast crosses
    // the 90 % threshold
    let horizon = 6;
    let forecast = arima.forecast(&traffic, horizon);
    let peak = traffic.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("\n{horizon}-step-ahead forecast (traffic units, peak so far {peak:.1}):");
    let threshold = 0.9;
    for (h, value) in forecast.iter().enumerate() {
        let normalized = value / peak;
        let alert = if normalized > threshold {
            format!("ALERT = {normalized:.2}")
        } else {
            "ok".to_string()
        };
        println!("  t+{:>2}: {value:7.1}  [{alert}]", h + 1);
    }

    // --- the same pipeline on a full VM workload profile ----------------
    let workload = VmWorkload::synthetic(400, 3);
    let predictor = HoltPredictor::default();
    let t = 350;
    let predicted = predictor.predict(&workload, t + 1);
    let actual = workload.at(t + 1);
    println!(
        "\nVM profile one-step prediction at t={t}: predicted max {:.2}, actual max {:.2}",
        predicted.max(),
        actual.max()
    );
    if predicted.exceeds(0.9) {
        println!(
            "  -> shim would raise a pre-alert (severity {:.2})",
            predicted.max()
        );
    } else {
        println!("  -> no alert: predicted profile under the 0.9 threshold");
    }
}

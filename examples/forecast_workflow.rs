//! The complete Box–Jenkins workflow Sheriff's prediction phase automates
//! (Sec. IV-B): order selection, fit diagnostics, forecast intervals, and
//! the conservative pre-alert rule that fires on the interval's upper
//! edge.
//!
//! ```text
//! cargo run --release --example forecast_workflow
//! ```

use sheriff_dcn::forecast::boxjenkins::{select, select_seasonal, SelectionConfig};
use sheriff_dcn::forecast::diagnostics::{diagnose_arima, diagnose_sarima};
use sheriff_dcn::forecast::generator::{weekly_traffic_trace, TraceConfig};
use sheriff_dcn::forecast::interval::first_alert_step;

fn main() {
    let season = 48; // samples per day
    let y = weekly_traffic_trace(&TraceConfig {
        len: 7 * season,
        samples_per_day: season,
        seed: 13,
    });
    let train = &y[..5 * season];

    // --- 1. automatic order selection -------------------------------------
    let cfg = SelectionConfig::default();
    let (spec, model) = select(train, &cfg).expect("non-seasonal selection");
    println!("Box–Jenkins selected {spec} (AIC {:.1})", model.aic());

    let (sspec, smodel) = select_seasonal(train, season, &cfg).expect("seasonal selection");
    println!("seasonal grid selected {sspec} (AIC {:.1})", smodel.aic());

    // --- 2. residual diagnostics -------------------------------------------
    let report = diagnose_arima(&model, train, 12);
    println!(
        "\n{} diagnostics: residual mean {:+.3}, variance {:.3}, Ljung–Box Q {:.1}, white: {}",
        report.model,
        report.residual_mean,
        report.residual_variance,
        report.ljung_box_q,
        report.residuals_white
    );
    let sreport = diagnose_sarima(&smodel, train, 12);
    println!(
        "{} diagnostics: residual variance {:.3}, white: {}",
        sreport.model, sreport.residual_variance, sreport.residuals_white
    );

    // --- 3. forecast intervals (the paper's "forecast range") --------------
    let horizon = 12;
    let forecasts = model.forecast_with_interval(train, horizon, 1.96);
    println!("\n{horizon}-step forecast with 95% bands:");
    for (h, f) in forecasts.iter().enumerate() {
        println!(
            "  t+{:>2}: {:6.1}  [{:6.1}, {:6.1}]  (se {:.2})",
            h + 1,
            f.mean,
            f.lower,
            f.upper,
            f.std_error
        );
    }

    // --- 4. conservative pre-alerting --------------------------------------
    // alert when the *upper band* crosses the threshold, not the mean —
    // the earlier, risk-averse variant of the Sec. IV-C rule
    let peak = train.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let threshold = 0.95 * peak;
    match first_alert_step(&forecasts, threshold) {
        Some(h) => println!(
            "\nupper-band crosses {threshold:.1} at t+{h}: raise the pre-alert {h} steps early"
        ),
        None => {
            println!("\nupper band stays below {threshold:.1} across the horizon: no alert needed")
        }
    }
}

//! Drive the declarative scenario engine from code: build a spec from an
//! inline TOML string, run the seed sweep in parallel, and print the
//! aggregated report — the same path as `scenarios/*.toml` files through
//! the `scenarios` binary, minus the filesystem.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```

use sheriff_dcn::prelude::*;

const SPEC: &str = r#"
name = "inline_sweep"
title = "Inline fat-tree sweep with a mid-run host failure"
rounds = 8
seeds = { base = 42, count = 4 }

[topology]
kind = "fat_tree"
pods = 8

[cluster]
vms_per_host = 2.5
skew = 4.0

[workload]
alert_fraction = 0.05

[runtime]
kind = "distributed"
max_retry = 3

[[fault]]
round = 3
action = "fail_host"
host = 0
"#;

fn main() {
    let spec = ScenarioSpec::parse_str(SPEC).expect("inline spec parses");
    let warnings = spec.validate().expect("inline spec is valid");
    for w in &warnings {
        eprintln!("warning: {w}");
    }

    let runner = ScenarioRunner::new(spec.clone());
    let runs = runner.run().expect("sweep runs");
    let report = aggregate(&spec, &runs);

    println!(
        "{} — {} topologies x {} seeds x {} rounds",
        report.id,
        spec.topologies.len(),
        spec.seeds.len(),
        spec.rounds
    );
    for (name, stat) in &report.metrics {
        println!(
            "  {name:<24} mean {:>9.3}  p95 {:>9.3}",
            stat.mean, stat.p95
        );
    }

    // the canonical form is what the determinism proptests compare;
    // re-running the same spec must reproduce it byte for byte
    let again = ScenarioRunner::new(spec.clone())
        .run()
        .expect("re-run succeeds");
    assert_eq!(
        report.canonical_json(),
        aggregate(&spec, &again).canonical_json(),
        "scenario sweeps are deterministic"
    );
    println!("re-run reproduced the canonical report byte-for-byte");

    println!("{}", report.to_json_pretty());
}

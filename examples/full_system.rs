//! The assembled Sheriff deployment: workloads, flows, QCN queues and
//! ToR monitors stepped as one system — every alert source of Sec. III-B
//! live at once, every shim reacting through Alg. 1.
//!
//! The same seeded scenario runs twice: once unobserved (`NullSink`) and
//! once streaming a JSON-lines trace to `results/full_system_trace.jsonl`
//! (`JsonLinesSink`). The two runs must produce byte-identical step
//! reports — observation is free of side effects on the simulation.
//!
//! ```text
//! cargo run --release --example full_system
//! ```

use std::fs::{self, File};
use std::io::BufWriter;

use sheriff_dcn::prelude::*;
use sheriff_dcn::sim::flows::Flow;

const SEED: u64 = 71;
const STEPS: usize = 40;

/// Traffic between dependent VMs: a flow per cross-rack dependency edge
/// with modest rate, plus a herd of deliberately overlapping elephants
/// between the two most populous racks — enough sustained outbound rate
/// to push the source rack's ToR uplink toward saturation.
fn dependent_flows(cluster: &Cluster) -> Vec<Flow> {
    let mut flows: Vec<Flow> = Vec::new();
    for vm in cluster.placement.vm_ids() {
        for &other in cluster.deps.neighbors(vm) {
            if vm < other && cluster.placement.rack_of(vm) != cluster.placement.rack_of(other) {
                flows.push(Flow {
                    src: vm,
                    dst: other,
                    rate: 0.05,
                    delay_sensitive: false,
                });
            }
        }
    }
    let vms_in = |rack: RackId| -> Vec<VmId> {
        cluster
            .placement
            .vm_ids()
            .filter(|&vm| cluster.placement.rack_of(vm) == rack)
            .collect()
    };
    let fat: Vec<RackId> = (0..cluster.dcn.rack_count())
        .map(RackId::from_index)
        .filter(|&r| vms_in(r).len() >= 2)
        .collect();
    if fat.len() >= 2 {
        let (srcs, dsts) = (vms_in(fat[0]), vms_in(fat[1]));
        for i in 0..4 {
            flows.push(Flow {
                src: srcs[i % srcs.len()],
                dst: dsts[i % dsts.len()],
                rate: 0.5,
                delay_sensitive: false,
            });
        }
    }
    flows
}

/// Build the seeded scenario observed by `sink`. Identical seed and
/// flows each time, so every build yields the very same system.
fn build_system<S: EventSink>(sink: S) -> System<S> {
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    let configured = |dcn: Dcn| {
        SystemBuilder::new(dcn)
            .vms_per_host(2.0)
            .skew(2.0)
            .workload_len(200)
            .seed(SEED)
    };
    // probe build: the flow list depends on the seeded placement
    let probe = configured(dcn.clone())
        .build()
        .expect("paper configuration is valid");
    configured(dcn)
        .flows(dependent_flows(&probe.cluster))
        .build_with_sink(sink)
        .expect("paper configuration is valid")
}

fn run<S: EventSink>(system: &mut System<S>, predictor: &HoltPredictor) -> Vec<StepReport> {
    (0..STEPS).map(|_| system.step(predictor)).collect()
}

fn main() {
    let predictor = HoltPredictor::default();

    // --- pass 1: unobserved ------------------------------------------
    let mut silent = build_system(NullSink);
    let baseline = run(&mut silent, &predictor);

    // --- pass 2: same scenario, JSON-lines trace ---------------------
    fs::create_dir_all("results").expect("create results/");
    let trace_path = "results/full_system_trace.jsonl";
    let writer = BufWriter::new(File::create(trace_path).expect("create trace file"));
    let mut observed = build_system(JsonLinesSink::new(writer));
    let reports = run(&mut observed, &predictor);

    println!(
        "{:>5} {:>6} {:>5} {:>7} {:>6} {:>8} {:>7} {:>7}",
        "step", "host", "tor", "switch", "moves", "reroutes", "stddev", "queue"
    );
    let mut acted = 0usize;
    for r in &reports {
        acted += r.migrations + r.reroutes;
        if r.time.is_multiple_of(5) || r.host_alerts + r.switch_alerts + r.tor_alerts > 0 {
            println!(
                "{:>5} {:>6} {:>5} {:>7} {:>6} {:>8} {:>7.1} {:>7.1}",
                r.time,
                r.host_alerts,
                r.tor_alerts,
                r.switch_alerts,
                r.migrations,
                r.reroutes,
                r.stddev,
                r.worst_queue
            );
        }
    }
    println!(
        "\n{acted} total management actions over {STEPS} periods; final std-dev {:.1}%, worst queue {:.1}",
        observed.cluster.utilization_stddev(),
        observed.qcn.worst_queue()
    );

    // --- observation must not perturb the simulation -----------------
    assert_eq!(
        baseline, reports,
        "NullSink and JsonLinesSink runs diverged"
    );
    assert_eq!(
        format!("{baseline:?}"),
        format!("{reports:?}"),
        "step reports are not byte-identical"
    );
    println!("observed run is byte-identical to the unobserved run ({STEPS} step reports)");

    // --- the trace itself --------------------------------------------
    let events = observed.into_sink().finish().expect("flush trace");
    drop(events);
    let trace = fs::read_to_string(trace_path).expect("read trace back");
    let count = |needle: &str| trace.lines().filter(|l| l.contains(needle)).count();
    let host = count(r#""ev":"alert_raised","#)
        - count(r#""kind":"local_tor""#)
        - count(r#""kind":"outer_switch""#);
    println!("\ntrace {trace_path}: {} lines", trace.lines().count());
    println!(
        "  alert_raised host/tor/switch  {host}/{}/{}",
        count(r#""kind":"local_tor""#),
        count(r#""kind":"outer_switch""#)
    );
    println!(
        "  request_sent / ack_received   {}/{}",
        count(r#""ev":"request_sent""#),
        count(r#""ev":"ack_received""#)
    );
    println!(
        "  round_start / round_end       {}/{}",
        count(r#""ev":"round_start""#),
        count(r#""ev":"round_end""#)
    );
    assert!(host > 0, "no host alerts in trace");
    assert!(count(r#""kind":"local_tor""#) > 0, "no ToR alerts in trace");
    assert!(
        count(r#""kind":"outer_switch""#) > 0,
        "no QCN alerts in trace"
    );
    assert!(count(r#""ev":"request_sent""#) > 0, "no REQUEST in trace");
    assert!(count(r#""ev":"ack_received""#) > 0, "no ACK in trace");
    assert_eq!(count(r#""ev":"round_start""#), STEPS);
    assert_eq!(count(r#""ev":"round_end""#), STEPS);
}

//! The assembled Sheriff deployment: workloads, flows, QCN queues and
//! ToR monitors stepped as one system — every alert source of Sec. III-B
//! live at once, every shim reacting through Alg. 1.
//!
//! ```text
//! cargo run --release --example full_system
//! ```

use sheriff_dcn::prelude::*;
use sheriff_dcn::sheriff::System;
use sheriff_dcn::sim::flows::{Flow, FlowNetwork};

fn main() {
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    let cluster = Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.0,
            skew: 2.0,
            workload_len: 200,
            seed: 71,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    );

    // traffic between dependent VMs: a flow per dependency edge with
    // modest rate, plus two deliberately overlapping elephants
    let mut flows_list: Vec<Flow> = Vec::new();
    for vm in cluster.placement.vm_ids() {
        for &other in cluster.deps.neighbors(vm) {
            if vm < other && cluster.placement.rack_of(vm) != cluster.placement.rack_of(other) {
                flows_list.push(Flow {
                    src: vm,
                    dst: other,
                    rate: 0.05,
                    delay_sensitive: false,
                });
            }
        }
    }
    let vms_in = |rack: RackId| -> Vec<VmId> {
        cluster
            .placement
            .vm_ids()
            .filter(|&vm| cluster.placement.rack_of(vm) == rack)
            .collect()
    };
    let fat: Vec<RackId> = (0..cluster.dcn.rack_count())
        .map(RackId::from_index)
        .filter(|&r| vms_in(r).len() >= 2)
        .collect();
    if fat.len() >= 2 {
        let (srcs, dsts) = (vms_in(fat[0]), vms_in(fat[1]));
        for i in 0..2 {
            flows_list.push(Flow {
                src: srcs[i],
                dst: dsts[i],
                rate: 0.45,
                delay_sensitive: false,
            });
        }
    }
    println!(
        "{} flows between dependent VMs + 2 elephants",
        flows_list.len()
    );

    let flows = FlowNetwork::route(&cluster.dcn, &cluster.placement, flows_list);
    let mut system = System::new(cluster, flows);
    let predictor = HoltPredictor::default();

    println!(
        "\n{:>5} {:>6} {:>5} {:>7} {:>6} {:>8} {:>7} {:>7}",
        "step", "host", "tor", "switch", "moves", "reroutes", "stddev", "queue"
    );
    let mut acted = 0usize;
    for _ in 0..40 {
        let r = system.step(&predictor);
        acted += r.migrations + r.reroutes;
        if r.time.is_multiple_of(5) || r.host_alerts + r.switch_alerts + r.tor_alerts > 0 {
            println!(
                "{:>5} {:>6} {:>5} {:>7} {:>6} {:>8} {:>7.1} {:>7.1}",
                r.time,
                r.host_alerts,
                r.tor_alerts,
                r.switch_alerts,
                r.migrations,
                r.reroutes,
                r.stddev,
                r.worst_queue
            );
        }
    }
    println!(
        "\n{acted} total management actions over 40 periods; final std-dev {:.1}%, worst queue {:.1}",
        system.cluster.utilization_stddev(),
        system.qcn.worst_queue()
    );
}

//! The paper's motivating claim, quantified (Sec. I, "Contingency vs
//! Pre-Control"): identical workloads, identical machinery — the only
//! difference is *when* the alert fires. The reactive manager learns
//! about an overload after it starts; Sheriff's pre-alert starts the
//! (slow, six-stage) migration early enough to finish before the surge.
//!
//! ```text
//! cargo run --release --example prealert_vs_reactive
//! ```

use sheriff_dcn::prelude::*;
use sheriff_dcn::sheriff::{run_policy, AlertPolicy};

fn build(seed: u64) -> Cluster {
    let dcn = fattree::build(&FatTreeConfig {
        host_capacity: 30.0,
        ..FatTreeConfig::paper(4)
    });
    Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 1.5,
            vm_capacity_range: (8.0, 16.0),
            skew: 1.0,
            workload_len: 300,
            seed,
            ..ClusterConfig::default()
        },
        SimConfig {
            alert_threshold: 0.55,
            ..SimConfig::paper()
        },
    )
}

fn main() {
    let delay = 3; // pre-copy duration in simulation steps (Fig. 2)
    let predictor = HoltPredictor {
        alpha: 0.35,
        beta: 0.05,
    };
    println!("policy comparison over 5 seeded clusters, migration delay {delay} steps\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "seed", "reactive", "pre-alert", "oracle"
    );

    let mut totals = [0.0f64; 3];
    for seed in 40..45u64 {
        let mut row = [0.0f64; 3];
        for (i, policy) in [
            AlertPolicy::Reactive,
            AlertPolicy::PreAlert,
            AlertPolicy::Oracle,
        ]
        .into_iter()
        .enumerate()
        {
            let mut cluster = build(seed);
            let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
            let out = run_policy(&mut cluster, &metric, &predictor, policy, 50, 250, delay);
            row[i] = out.overload_integral;
            totals[i] += out.overload_integral;
        }
        println!(
            "{seed:>6} {:>12.2} {:>12.2} {:>12.2}",
            row[0], row[1], row[2]
        );
    }
    println!(
        "{:>6} {:>12.2} {:>12.2} {:>12.2}",
        "total", totals[0], totals[1], totals[2]
    );
    println!(
        "\npre-alert cut aggregate overload exposure by {:.1}% (perfect foresight: {:.1}%)",
        (1.0 - totals[1] / totals[0]) * 100.0,
        (1.0 - totals[2] / totals[0]) * 100.0
    );
    println!("the oracle column bounds what any predictor could achieve with this machinery");
}

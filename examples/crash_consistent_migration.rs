//! Crash-consistent migration commits: a shim is killed *between* its
//! PREPARE burst and the COMMIT phase, stays dark while its transfers
//! hang half-done, then recovers and replays its write-ahead intent
//! journal — re-ACKing committed transfers and lease-aborting orphaned
//! prepares — before rejoining the round. The always-on invariant
//! auditor verifies that no VM was lost, duplicated or left in a
//! half-committed state.
//!
//! ```text
//! cargo run --release --example crash_consistent_migration
//! ```

use sheriff_dcn::prelude::*;

fn build_cluster() -> Cluster {
    let dcn = fattree::build(&FatTreeConfig::paper(8));
    Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 4.0,
            seed: 31,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    )
}

fn main() {
    // dry-run the identical round on a healthy fabric to discover which
    // rack absorbs the most migrations — that destination shim holds the
    // largest intent journal, making it the worst possible crash victim
    let victim = {
        let mut probe = build_cluster();
        let metric = RackMetric::build(&probe.dcn, &probe.sim);
        let alerts = probe.fraction_alerts(0.10, 0);
        let vals: Vec<f64> = probe
            .placement
            .vm_ids()
            .map(|vm| probe.placement.utilization(probe.placement.host_of(vm)))
            .collect();
        let cfg = FabricConfig::for_channel(ChannelFaults::lossy(0.02), 7).with_hello_window(2);
        let out = FabricRuntime::with_config(cfg).step(&mut RunCtx {
            cluster: &mut probe,
            metric: &metric,
            alerts: &alerts,
            alert_values: &vals,
            sink: &mut NullSink,
        });
        let mut per_rack = vec![0usize; probe.dcn.rack_count()];
        for m in &out.plan.moves {
            per_rack[probe.placement.rack_of_host(m.to).index()] += 1;
        }
        let busiest = (0..per_rack.len()).max_by_key(|&r| per_rack[r]).unwrap();
        println!(
            "dry run: rack {busiest} is the busiest destination ({} transfers land there)",
            per_rack[busiest]
        );
        RackId::from_index(busiest)
    };

    let mut cluster = build_cluster();
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    let alerts = cluster.fraction_alerts(0.10, 0);
    let alert_values: Vec<f64> = cluster
        .placement
        .vm_ids()
        .map(|vm| cluster.placement.utilization(cluster.placement.host_of(vm)))
        .collect();

    // the fabric's timeline on a quiet channel: HELLO at t=0, PREPAREs
    // sent at t=2 and journalled at the destinations at t=3, PREPARE-OKs
    // back at t=4, COMMITs land at t=5. Killing the busiest destination
    // at t=6 catches its journal holding committed first-wave transfers
    // (whose ACKs may still be in flight) plus freshly prepared
    // second-wave ones; at t=14 it replays that journal and rejoins.
    println!(
        "shim of rack {} dies at tick 6 (mid-2PC), replays its journal at tick 14\n",
        victim.index()
    );

    let mut cfg = FabricConfig::for_channel(ChannelFaults::lossy(0.02), 7).with_hello_window(2);
    cfg.crashed = vec![CrashWindow::during(victim, 6, 14)];
    let mut rec = RingRecorder::new(1 << 14);
    let report = FabricRuntime::with_config(cfg).step(&mut RunCtx {
        cluster: &mut cluster,
        metric: &metric,
        alerts: &alerts,
        alert_values: &alert_values,
        sink: &mut rec,
    });

    println!("fabric round finished in {} virtual ticks:", report.ticks);
    println!("  transactions PREPAREd   {:>5}", report.txn_prepared);
    println!("  transactions COMMITted  {:>5}", report.txn_committed);
    println!("  transactions ABORTed    {:>5}", report.txn_aborted);
    println!("  shims recovered         {:>5}", report.recoveries);
    println!("  migrations recorded     {:>5}", report.plan.moves.len());
    println!("  messages dropped        {:>5}", report.drops);
    println!("  retransmissions         {:>5}", report.resends);

    println!("\ncrash/recovery trace (from the event stream):");
    println!("  shim_crashed    {:>5}", rec.count_kind("shim_crashed"));
    println!("  shim_recovered  {:>5}", rec.count_kind("shim_recovered"));
    println!("  txn_prepared    {:>5}", rec.count_kind("txn_prepared"));
    println!("  txn_committed   {:>5}", rec.count_kind("txn_committed"));
    println!("  txn_aborted     {:>5}", rec.count_kind("txn_aborted"));
    println!(
        "  journal entries replayed on recovery: {} (re-ACKs {}, commit-forwards {})",
        rec.counters().get("journal.replayed"),
        rec.counters().get("journal.reacked"),
        rec.counters().get("journal.forwarded"),
    );

    // the verdict: every invariant held despite the mid-2PC crash
    println!("\n{}", report.audit);
    println!(
        "std-dev after the round {:.1}%, total migration cost {:.1}",
        cluster.utilization_stddev(),
        report.plan.total_cost
    );
    assert!(report.audit.is_clean(), "auditor found violations");
}

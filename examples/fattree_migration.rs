//! The Fig. 9/11/12 scenario: regional Sheriff vs the centralized global
//! manager on a Fat-Tree — balance trajectory, migration cost, and search
//! space side by side.
//!
//! ```text
//! cargo run --release --example fattree_migration [pods]
//! ```

use sheriff_dcn::prelude::*;
use sheriff_dcn::sheriff::centralized_migration_chunked;
use sheriff_dcn::sheriff::vmmigration::MigrationContext;
use sheriff_dcn::sim::AlertSource;

fn main() {
    let pods: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    let build = || {
        let dcn = fattree::build(&FatTreeConfig {
            hosts_per_rack: 2,
            ..FatTreeConfig::paper(pods)
        });
        Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.0,
                skew: 4.0,
                seed: 42,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        )
    };

    let mut regional = build();
    let mut central = build();
    println!(
        "{pods}-pod Fat-Tree: {} racks, {} hosts, {} VMs",
        regional.dcn.rack_count(),
        regional.placement.host_count(),
        regional.placement.vm_count()
    );
    let metric = RackMetric::build(&regional.dcn, &regional.sim);

    // shared candidate set: the max-ALERT VM on each of the 5% hottest hosts
    let alert_values: Vec<f64> = regional
        .placement
        .vm_ids()
        .map(|vm| {
            regional
                .placement
                .utilization(regional.placement.host_of(vm))
        })
        .collect();
    let alerts = regional.fraction_alerts(0.05, 0);
    let candidates: Vec<VmId> = alerts
        .iter()
        .filter_map(|a| match a.source {
            AlertSource::Host(h) => priority(
                regional.placement.vms_on(h),
                &regional.placement,
                |vm| alert_values[vm.index()],
                Budget::SingleMaxAlert,
            )
            .first()
            .copied(),
            _ => None,
        })
        .collect();
    println!(
        "{} alerting hosts, {} candidate VMs\n",
        alerts.len(),
        candidates.len()
    );

    // --- regional Sheriff -------------------------------------------------
    let sheriff = Sheriff::new(&regional);
    let report = sheriff.round(&mut regional, &metric, None, &alerts, &|vm| {
        alert_values[vm.index()]
    });
    println!(
        "Sheriff (regional): {:>4} moves, cost {:>9.0}, search space {:>8}, std-dev {:.1}% -> {:.1}%",
        report.plan.moves.len(),
        report.plan.total_cost,
        report.plan.search_space,
        report.stddev_before,
        report.stddev_after
    );

    // --- centralized global manager ---------------------------------------
    let before = central.utilization_stddev();
    let plan = {
        let mut ctx = MigrationContext {
            placement: &mut central.placement,
            inventory: &central.dcn.inventory,
            deps: &central.deps,
            metric: &metric,
            sim: &central.sim,
        };
        centralized_migration_chunked(&mut ctx, &candidates, 64, 3)
    };
    println!(
        "Centralized manager: {:>3} moves, cost {:>9.0}, search space {:>8}, std-dev {:.1}% -> {:.1}%",
        plan.moves.len(),
        plan.total_cost,
        plan.search_space,
        before,
        central.utilization_stddev()
    );

    let ratio = plan.search_space as f64 / report.plan.search_space.max(1) as f64;
    println!(
        "\nSheriff examined {ratio:.0}x fewer candidate pairs for {:+.1}% cost difference",
        (report.plan.total_cost / plan.total_cost.max(1e-9) - 1.0) * 100.0
    );
}

//! Quickstart: build a small Fat-Tree data center, let 5 % of VMs raise
//! pre-alerts, and watch Sheriff's regional shims re-balance the cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sheriff_dcn::prelude::*;

fn main() {
    // a 4-pod Fat-Tree: 8 racks, 2 aggregation + 1 core layer
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    println!(
        "topology: {} racks, {} switches, {} hosts",
        dcn.rack_count(),
        dcn.graph.node_count() - dcn.rack_count(),
        dcn.inventory.host_count()
    );

    // populate with VMs on scattered hot spots
    let cluster_cfg = ClusterConfig {
        vms_per_host: 2.5,
        skew: 4.0,
        seed: 7,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::build(dcn, &cluster_cfg, SimConfig::paper());
    println!(
        "placed {} VMs; initial workload std-dev {:.1}%",
        cluster.placement.vm_count(),
        cluster.utilization_stddev()
    );

    // the rack-to-rack migration-cost metric (Eqn. 1 collapsed by
    // Floyd–Warshall/Dijkstra, Sec. V-A)
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);

    // one shim per rack, each dominating its pod
    let sheriff = Sheriff::new(&cluster);

    for round in 0..8 {
        let alerts = cluster.fraction_alerts(0.05, round);
        let utils: Vec<f64> = cluster
            .placement
            .vm_ids()
            .map(|vm| cluster.placement.utilization(cluster.placement.host_of(vm)))
            .collect();
        let report = sheriff.round(&mut cluster, &metric, None, &alerts, &|vm| {
            utils[vm.index()]
        });
        println!(
            "round {round}: {} shims active, {} migrations (cost {:.0}), std-dev {:.1}% -> {:.1}%",
            report.shims_active,
            report.plan.moves.len(),
            report.plan.total_cost,
            report.stddev_before,
            report.stddev_after
        );
    }

    println!(
        "final workload std-dev {:.1}%",
        cluster.utilization_stddev()
    );
}

//! Quickstart: build a small Fat-Tree data center through the validating
//! [`SystemBuilder`], step the assembled management loop, and inspect
//! what the in-memory event recorder observed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sheriff_dcn::prelude::*;

fn main() {
    // a 4-pod Fat-Tree: 8 racks, 2 aggregation + 1 core layer
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    println!(
        "topology: {} racks, {} switches, {} hosts",
        dcn.rack_count(),
        dcn.graph.node_count() - dcn.rack_count(),
        dcn.inventory.host_count()
    );

    // populate with VMs on scattered hot spots; the builder validates
    // every knob and returns a typed SheriffError instead of panicking
    let mut system = SystemBuilder::new(dcn)
        .vms_per_host(2.5)
        .skew(4.0)
        .seed(7)
        .workload_len(200)
        .build_with_sink(RingRecorder::new(4096))
        .expect("paper configuration is valid");
    println!(
        "placed {} VMs; initial workload std-dev {:.1}%",
        system.cluster.placement.vm_count(),
        system.cluster.utilization_stddev()
    );

    // step the full loop: monitor -> predict -> pre-alert -> manage
    let predictor = HoltPredictor::default();
    for _ in 0..8 {
        let r = system.step(&predictor);
        println!(
            "round {}: {} host alerts, {} migrations, {} reroutes, std-dev {:.1}%",
            r.time, r.host_alerts, r.migrations, r.reroutes, r.stddev
        );
    }
    println!(
        "final workload std-dev {:.1}%",
        system.cluster.utilization_stddev()
    );

    // every decision above was also streamed to the recorder
    let rec = system.sink();
    println!(
        "\nrecorder saw {} events: {} alerts, {} REQUESTs, {} ACKs, {} commits",
        rec.len(),
        rec.count_kind("alert_raised"),
        rec.count_kind("request_sent"),
        rec.count_kind("ack_received"),
        rec.count_kind("migration_committed"),
    );
    if let Some(t) = rec.timing_stat("system.step") {
        println!(
            "system.step: {} scopes, {:.2} ms wall total",
            t.count,
            t.wall_nanos as f64 / 1e6
        );
    }
}

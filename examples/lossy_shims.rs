//! A full pre-alert round over an unreliable shim channel: 5% message
//! loss plus one crashed shim. The fabric runtime negotiates every
//! migration with REQUEST/ACK/REJECT messages subject to drops,
//! duplication, reordering and variable delay; timeouts trigger
//! exponential-backoff retransmission, and shims that stay silent are
//! presumed dead and routed around (Sec. III-A's backup behaviour).
//!
//! ```text
//! cargo run --release --example lossy_shims
//! ```

use sheriff_dcn::prelude::*;

fn main() {
    let dcn = fattree::build(&FatTreeConfig::paper(8));
    let mut cluster = Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 4.0,
            seed: 99,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    );
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    println!(
        "{} racks, {} VMs, initial std-dev {:.1}%",
        cluster.dcn.rack_count(),
        cluster.placement.vm_count(),
        cluster.utilization_stddev()
    );

    let alerts = cluster.fraction_alerts(0.10, 0);
    let crashed = alerts[0].rack;
    println!(
        "{} pre-alerts; channel at 5% loss; shim of rack {crashed} crashed\n",
        alerts.len()
    );

    let alert_values: Vec<f64> = cluster
        .placement
        .vm_ids()
        .map(|vm| cluster.placement.utilization(cluster.placement.host_of(vm)))
        .collect();
    let mut cfg = FabricConfig::for_channel(ChannelFaults::lossy(0.05), 7).with_hello_window(2);
    cfg.crashed = vec![CrashWindow::whole_round(crashed)];
    let report = FabricRuntime::with_config(cfg).step(&mut RunCtx {
        cluster: &mut cluster,
        metric: &metric,
        alerts: &alerts,
        alert_values: &alert_values,
        sink: &mut NullSink,
    });

    println!("fabric round finished in {} virtual ticks:", report.ticks);
    println!("  shims participating   {:>5}", report.shims);
    println!("  shims crashed         {:>5}", report.crashed_shims);
    println!("  shims degraded        {:>5}", report.degraded_shims);
    println!("  migrations committed  {:>5}", report.plan.moves.len());
    println!("  REQUESTs rejected     {:>5}", report.plan.rejected);
    println!("  VMs left unplaced     {:>5}", report.plan.unplaced.len());
    println!("  messages dropped      {:>5}", report.drops);
    println!("  reply timeouts        {:>5}", report.timeouts);
    println!("  retransmissions       {:>5}", report.resends);
    println!(
        "  duplicate commits absorbed {:>2} (req-id dedup)",
        report.dedup_hits
    );
    println!(
        "\nstd-dev after the round {:.1}%, total migration cost {:.1}",
        cluster.utilization_stddev(),
        report.plan.total_cost
    );

    // the channel may lie, the placement may not: verify the invariants
    let mut capacity_ok = true;
    for h in 0..cluster.placement.host_count() {
        let h = HostId::from_index(h);
        capacity_ok &=
            cluster.placement.used_capacity(h) <= cluster.placement.host_capacity(h) + 1e-9;
    }
    let mut conflicts = 0;
    for vm in cluster.placement.vm_ids() {
        let host = cluster.placement.host_of(vm);
        for &other in cluster.placement.vms_on(host) {
            if other != vm && cluster.deps.dependent(vm, other) {
                conflicts += 1;
            }
        }
    }
    println!(
        "invariants under faults: capacity {} | dependency conflicts {}",
        if capacity_ok { "OK" } else { "VIOLATED" },
        conflicts / 2
    );
}

//! The concurrent runtimes: every alerted shim plans on its own thread
//! and commits through the FCFS REQUEST/ACK protocol (Alg. 4) — the
//! "communicate between each other to avoid conflictions" of Sec. VIII.
//! First the lock-based runtime, then the fully sharded one where each
//! rack's agent owns its capacity and messages flow over channels.
//!
//! ```text
//! cargo run --release --example distributed_shims
//! ```

use sheriff_dcn::prelude::*;

fn main() {
    let dcn = fattree::build(&FatTreeConfig::paper(8));
    let mut cluster = Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 4.0,
            seed: 99,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    );
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    println!(
        "{} racks, {} VMs, initial std-dev {:.1}%",
        cluster.dcn.rack_count(),
        cluster.placement.vm_count(),
        cluster.utilization_stddev()
    );

    let mut runtime = DistributedRuntime { max_retry: 3 };
    for round in 0..6 {
        let alerts = cluster.fraction_alerts(0.08, round);
        let alert_values: Vec<f64> = cluster
            .placement
            .vm_ids()
            .map(|vm| cluster.placement.utilization(cluster.placement.host_of(vm)))
            .collect();
        let report = runtime.step(&mut RunCtx {
            cluster: &mut cluster,
            metric: &metric,
            alerts: &alerts,
            alert_values: &alert_values,
            sink: &mut NullSink,
        });
        println!(
            "round {round}: {} shim threads, {} moves, {} REQUESTs rejected+retried, std-dev {:.1}%",
            report.shims,
            report.plan.moves.len(),
            report.retries,
            cluster.utilization_stddev()
        );
    }

    // --- the sharded (lock-free) runtime on a fresh cluster ------------
    let dcn = fattree::build(&FatTreeConfig::paper(8));
    let mut sharded = Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 4.0,
            seed: 99,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    );
    println!("\nsharded runtime (per-rack agents, REQUEST/ACK over channels):");
    let mut runtime = ShardedRuntime;
    for round in 0..6 {
        let alerts = sharded.fraction_alerts(0.08, round);
        let vals: Vec<f64> = sharded
            .placement
            .vm_ids()
            .map(|vm| sharded.placement.utilization(sharded.placement.host_of(vm)))
            .collect();
        let r = runtime.step(&mut RunCtx {
            cluster: &mut sharded,
            metric: &metric,
            alerts: &alerts,
            alert_values: &vals,
            sink: &mut NullSink,
        });
        println!(
            "round {round}: {} planner threads, {} moves, {} REQUESTs rejected, std-dev {:.1}%",
            r.shims,
            r.plan.moves.len(),
            r.plan.rejected,
            sharded.utilization_stddev()
        );
    }

    // verify the protocol kept every invariant despite concurrency
    let mut capacity_ok = true;
    for h in 0..cluster.placement.host_count() {
        let h = HostId::from_index(h);
        capacity_ok &=
            cluster.placement.used_capacity(h) <= cluster.placement.host_capacity(h) + 1e-9;
    }
    let mut conflicts = 0;
    for vm in cluster.placement.vm_ids() {
        let host = cluster.placement.host_of(vm);
        for &other in cluster.placement.vms_on(host) {
            if other != vm && cluster.deps.dependent(vm, other) {
                conflicts += 1;
            }
        }
    }
    println!(
        "\ninvariants after concurrent rounds: capacity {} | dependency conflicts {}",
        if capacity_ok { "OK" } else { "VIOLATED" },
        conflicts / 2
    );
}

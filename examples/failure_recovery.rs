//! Failure injection and recovery: links die, the cost metric routes
//! migrations around them, and a failing host is evacuated by the backup
//! system (Sec. III-A) using the same matching machinery as VMMIGRATION.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sheriff_dcn::prelude::*;
use sheriff_dcn::sheriff::{drain_rack, evacuate_host};
use sheriff_dcn::sim::faults::{fail_random_links, racks_connected};

fn main() {
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    let mut cluster = Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.0,
            skew: 2.0,
            seed: 17,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    );
    println!(
        "{} racks, {} hosts, {} VMs placed",
        cluster.dcn.rack_count(),
        cluster.placement.host_count(),
        cluster.placement.vm_count()
    );

    // --- 1. link failures -------------------------------------------------
    let mut rng = StdRng::seed_from_u64(3);
    let failed = fail_random_links(&mut cluster.dcn, &mut rng, 0.15);
    println!(
        "\nkilled {} of {} links; racks still connected: {}",
        failed.len(),
        cluster.dcn.graph.edge_count(),
        racks_connected(&cluster.dcn, cluster.sim.bandwidth_threshold)
    );
    // the metric is rebuilt over the degraded fabric: dead links are
    // excluded, migrations route around them
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    let reachable_pairs = (0..cluster.dcn.rack_count())
        .flat_map(|a| (0..cluster.dcn.rack_count()).map(move |b| (a, b)))
        .filter(|&(a, b)| a != b)
        .filter(|&(a, b)| metric.reachable(RackId::from_index(a), RackId::from_index(b)))
        .count();
    println!(
        "reachable rack pairs on the degraded fabric: {reachable_pairs}/{}",
        cluster.dcn.rack_count() * (cluster.dcn.rack_count() - 1)
    );

    // --- 2. host failure: evacuate ---------------------------------------
    let host = (0..cluster.placement.host_count())
        .map(HostId::from_index)
        .max_by_key(|&h| cluster.placement.vms_on(h).len())
        .expect("hosts exist");
    let vms = cluster.placement.vms_on(host).len();
    let rack = cluster.placement.rack_of_host(host);
    let region = cluster.dcn.neighbor_racks(rack, 2);
    println!("\nhost {host} (rack {rack}) fails with {vms} VMs aboard");
    let plan = {
        let mut ctx = MigrationContext {
            placement: &mut cluster.placement,
            inventory: &cluster.dcn.inventory,
            deps: &cluster.deps,
            metric: &metric,
            sim: &cluster.sim,
        };
        evacuate_host(&mut ctx, host, &region, 5)
    };
    println!(
        "evacuated {} VMs at cost {:.0}; host now holds {} VMs",
        plan.moves.len(),
        plan.total_cost,
        cluster.placement.vms_on(host).len()
    );

    // --- 3. rack maintenance: drain --------------------------------------
    let drain = RackId(1);
    let rack_vms: usize = cluster
        .dcn
        .inventory
        .hosts_in(drain)
        .iter()
        .map(|&h| cluster.placement.vms_on(h).len())
        .sum();
    let region = cluster.dcn.neighbor_racks(drain, 4);
    println!("\ndraining rack {drain} ({rack_vms} VMs) for maintenance");
    let plan = {
        let mut ctx = MigrationContext {
            placement: &mut cluster.placement,
            inventory: &cluster.dcn.inventory,
            deps: &cluster.deps,
            metric: &metric,
            sim: &cluster.sim,
        };
        drain_rack(&mut ctx, drain, &region, 5)
    };
    let landed_home = plan
        .moves
        .iter()
        .filter(|m| cluster.placement.rack_of_host(m.to) == drain)
        .count();
    println!(
        "drained {} VMs ({} unplaced, {} landed back home — must be 0)",
        plan.moves.len(),
        plan.unplaced.len(),
        landed_home
    );
}

//! The Fig. 10/13/14 scenario on a server-centric BCube topology:
//! Sheriff's 24-round balance trajectory plus live-migration timeline
//! estimates for the committed moves (six-stage pre-copy, Fig. 2).
//!
//! ```text
//! cargo run --release --example bcube_migration [n]
//! ```

use sheriff_dcn::prelude::*;
use sheriff_dcn::sim::precopy_timeline;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    let dcn = bcube::build(&BCubeConfig::paper(n));
    println!(
        "BCube({n},1): {} server-racks, {} switches, {} hosts",
        dcn.rack_count(),
        dcn.graph.node_count() - dcn.rack_count(),
        dcn.inventory.host_count()
    );

    let mut cluster = Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 4.0,
            seed: 21,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    );
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    let sheriff = Sheriff::new(&cluster);

    let (trajectory, plan) = sheriff.balance_trajectory(&mut cluster, &metric, 0.05, 24);
    println!("\nworkload std-dev per round:");
    for (round, v) in trajectory.iter().enumerate() {
        if round % 4 == 0 || round == trajectory.len() - 1 {
            println!(
                "  round {round:>2}: {v:5.1}%  {}",
                "#".repeat((*v) as usize)
            );
        }
    }
    println!(
        "\n{} migrations, total Eqn.1 cost {:.0}, search space {}",
        plan.moves.len(),
        plan.total_cost,
        plan.search_space
    );

    // six-stage pre-copy timeline for the three largest committed moves
    println!("\nsix-stage pre-copy timelines (largest VMs):");
    let mut moves = plan.moves.clone();
    moves.sort_by(|a, b| {
        cluster
            .placement
            .spec(b.vm)
            .capacity
            .partial_cmp(&cluster.placement.spec(a.vm).capacity)
            .expect("capacities are never NaN")
    });
    for m in moves.iter().take(3) {
        let cap = cluster.placement.spec(m.vm).capacity;
        // RAM proportional to VM capacity; dirty rate 10% of bandwidth
        let ram_mb = cap * 100.0;
        let timeline = precopy_timeline(ram_mb, 100.0, 1000.0, 1.0, 30);
        println!(
            "  {} ({}→{}, cap {cap:.0}): {} pre-copy rounds, total {:.2}s, downtime {:.0}ms",
            m.vm,
            m.from,
            m.to,
            timeline.rounds,
            timeline.total(),
            timeline.downtime() * 1000.0
        );
    }
}

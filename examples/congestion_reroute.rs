//! The FLOWREROUTE path (Sec. III-B): flows between dependent VMs
//! saturate a link, the switch's QCN congestion point signals, the shim
//! raises an outer-switch alert, and Sheriff reroutes the conflicting
//! flows around the hot switch — cheaper and faster than migration.
//!
//! ```text
//! cargo run --release --example congestion_reroute
//! ```

use sheriff_dcn::prelude::*;
use sheriff_dcn::sheriff::{flow_reroute, pre_alert_management, MigrationContext};
use sheriff_dcn::sim::flows::{Flow, FlowNetwork};
use sheriff_dcn::sim::qcn::{CongestionPoint, CpConfig, ReactionPoint, RpConfig};

fn main() {
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    let mut cluster = Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.0,
            skew: 1.0,
            seed: 5,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    );

    // pick two VMs in different pods and drive heavy traffic between them
    let src = cluster
        .placement
        .vm_ids()
        .find(|&vm| cluster.placement.rack_of(vm) == RackId(0))
        .expect("rack 0 populated");
    let dst = cluster
        .placement
        .vm_ids()
        .find(|&vm| cluster.placement.rack_of(vm) == RackId(3))
        .expect("rack 3 populated");
    let mut flows = FlowNetwork::route(
        &cluster.dcn,
        &cluster.placement,
        vec![
            Flow {
                src,
                dst,
                rate: 0.95,
                delay_sensitive: false,
            },
            Flow {
                src: dst,
                dst: src,
                rate: 0.30,
                delay_sensitive: true,
            },
        ],
    );
    println!("flow {src}->{dst} at 0.95 over edge links of capacity 1.0");

    // --- QCN at the congested switch --------------------------------------
    let mut cp = CongestionPoint::new(CpConfig::default());
    let mut rp = ReactionPoint::new(0.95, RpConfig::default());
    for step in 0..8 {
        // arrivals above service rate build the queue
        if let Some(fb) = cp.sample(rp.rate() * 40.0, 30.0) {
            rp.on_feedback(fb);
            println!(
                "  step {step}: queue {:>5.1}, feedback {:>6.1} -> sender rate {:.3}",
                cp.queue_len(),
                fb.fb,
                rp.rate()
            );
        } else {
            rp.on_quiet_cycle();
            println!(
                "  step {step}: queue {:>5.1}, no congestion -> recovery to {:.3}",
                cp.queue_len(),
                rp.rate()
            );
        }
    }

    // --- the shim's reaction: FLOWREROUTE ---------------------------------
    let hot = flows.congested_switches(&cluster.dcn, 0.9);
    println!("\ncongested switches above 90% utilisation: {:?}", hot);
    let (sw, worst) = hot[0];
    println!("hot switch {sw} at {:.0}% — rerouting", worst * 100.0);

    let ids = flows.flows_through_switch(&cluster.dcn, sw);
    let report = flow_reroute(&cluster.dcn, &cluster.placement, &mut flows, sw, &ids);
    println!(
        "rerouted {} flow(s), {} stuck, {} delay-sensitive left untouched",
        report.rerouted, report.stuck, report.skipped_delay_sensitive
    );
    println!(
        "flows still through {sw}: {}",
        flows.flows_through_switch(&cluster.dcn, sw).len()
    );

    // --- or drive the whole thing through Alg. 1 --------------------------
    let alert = Alert {
        rack: RackId(0),
        source: AlertSource::OuterSwitch(sw),
        severity: worst.min(1.0),
        time: 0,
    };
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    let region = cluster.region_of(RackId(0));
    let mut ctx = MigrationContext {
        placement: &mut cluster.placement,
        inventory: &cluster.dcn.inventory,
        deps: &cluster.deps,
        metric: &metric,
        sim: &cluster.sim,
    };
    let outcome = pre_alert_management(
        &mut ctx,
        &cluster.dcn,
        Some(&mut flows),
        RackId(0),
        &region,
        &[alert],
        &|_| 0.95,
        3,
    );
    println!(
        "\nAlg. 1 outcome: {} rerouted, {} migrations (switch alerts reroute, they do not migrate)",
        outcome.reroutes.rerouted,
        outcome.plan.moves.len()
    );
}
